#include "operators/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/config.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "operators/kernels_internal.h"
#include "telemetry/telemetry.h"

namespace hetdb {

using namespace kernel_internal;  // NOLINT — shared kernel building blocks

// Shared building blocks (declared in kernels_internal.h) live in
// kernel_internal so the fused pipeline kernel reuses them; everything else
// in this file stays in the anonymous namespace below.
namespace kernel_internal {

bool UseParallelBackend() {
  return GlobalKernelConfig().backend == KernelBackend::kMorselParallel;
}

size_t ConfigMorselRows() {
  return std::max<size_t>(1, GlobalKernelConfig().morsel_rows);
}

void RecordLoop(KernelStats& stats, size_t total, size_t morsel_rows,
                int workers) {
  stats.dop->Record(workers);
  stats.morsels->Increment(static_cast<int64_t>(
      total == 0 ? 0 : (total + morsel_rows - 1) / morsel_rows));
}

Result<double> ValueAsDouble(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return static_cast<double>(std::get<int64_t>(value));
  }
  if (std::holds_alternative<double>(value)) return std::get<double>(value);
  return Status::InvalidArgument("expected numeric constant, got string");
}

Result<int64_t> ValueAsInt64(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) return std::get<int64_t>(value);
  if (std::holds_alternative<double>(value)) {
    return static_cast<int64_t>(std::get<double>(value));
  }
  return Status::InvalidArgument("expected numeric constant, got string");
}

/// Reads an integer join key; fatal if the column is not integer-typed.
int64_t IntKeyAt(const Column& column, size_t row) {
  if (column.type() == DataType::kInt32) {
    return static_cast<const Int32Column&>(column).value(row);
  }
  HETDB_CHECK(column.type() == DataType::kInt64);
  return static_cast<const Int64Column&>(column).value(row);
}

/// Reads a numeric column value as double (fatal on string columns).
double NumericAt(const Column& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt32:
      return static_cast<const Int32Column&>(column).value(row);
    case DataType::kInt64:
      return static_cast<double>(
          static_cast<const Int64Column&>(column).value(row));
    case DataType::kDouble:
      return static_cast<const DoubleColumn&>(column).value(row);
    case DataType::kString:
      HETDB_LOG(Fatal) << "numeric access on string column " << column.name();
  }
  return 0;
}

/// out[i] = src[rows[i]]; morsel-parallel under the parallel backend. The
/// value order (and hence the result) is identical either way.
template <typename T>
std::vector<T> GatherValues(const std::vector<T>& src,
                            const std::vector<uint32_t>& rows) {
  std::vector<T> out(rows.size());
  if (UseParallelBackend()) {
    ParallelFor(rows.size(), ConfigMorselRows(),
                [&](size_t begin, size_t end, int) {
                  for (size_t i = begin; i < end; ++i) out[i] = src[rows[i]];
                });
  } else {
    for (size_t i = 0; i < rows.size(); ++i) out[i] = src[rows[i]];
  }
  return out;
}

/// Copies `rows` of `source` into a fresh column. The output is named
/// `name_override` when non-empty, `source.name()` otherwise.
ColumnPtr GatherColumn(const Column& source, const std::vector<uint32_t>& rows,
                       const std::string& name_override) {
  const std::string& name =
      name_override.empty() ? source.name() : name_override;
  switch (source.type()) {
    case DataType::kInt32:
      return std::make_shared<Int32Column>(
          name,
          GatherValues(static_cast<const Int32Column&>(source).values(), rows));
    case DataType::kInt64:
      return std::make_shared<Int64Column>(
          name,
          GatherValues(static_cast<const Int64Column&>(source).values(), rows));
    case DataType::kDouble:
      return std::make_shared<DoubleColumn>(
          name, GatherValues(static_cast<const DoubleColumn&>(source).values(),
                             rows));
    case DataType::kString: {
      const auto& str = static_cast<const StringColumn&>(source);
      auto out = StringColumn::FromDictionary(name, str.dictionary());
      out->mutable_codes() = GatherValues(str.codes(), rows);
      return out;
    }
  }
  return nullptr;
}

}  // namespace kernel_internal

namespace {

// ---------------------------------------------------------------------------
// Filter: predicate compilation + evaluation
// ---------------------------------------------------------------------------

/// Ors the rows matching `atom` into `mask` (scalar reference path).
Status EvalAtomInto(const Table& input, const Predicate& atom,
                    std::vector<uint8_t>* mask) {
  HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(atom.column));
  const size_t n = column->num_rows();

  switch (column->type()) {
    case DataType::kInt32: {
      const auto& values = static_cast<const Int32Column&>(*column).values();
      HETDB_ASSIGN_OR_RETURN(int64_t rhs, ValueAsInt64(atom.value));
      int64_t rhs2 = 0;
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(rhs2, ValueAsInt64(atom.value2));
      }
      for (size_t i = 0; i < n; ++i) {
        if (CompareValues<int64_t>(values[i], atom.op, rhs, rhs2)) {
          (*mask)[i] = 1;
        }
      }
      return Status::OK();
    }
    case DataType::kInt64: {
      const auto& values = static_cast<const Int64Column&>(*column).values();
      HETDB_ASSIGN_OR_RETURN(int64_t rhs, ValueAsInt64(atom.value));
      int64_t rhs2 = 0;
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(rhs2, ValueAsInt64(atom.value2));
      }
      for (size_t i = 0; i < n; ++i) {
        if (CompareValues<int64_t>(values[i], atom.op, rhs, rhs2)) {
          (*mask)[i] = 1;
        }
      }
      return Status::OK();
    }
    case DataType::kDouble: {
      const auto& values = static_cast<const DoubleColumn&>(*column).values();
      HETDB_ASSIGN_OR_RETURN(double rhs, ValueAsDouble(atom.value));
      double rhs2 = 0;
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(rhs2, ValueAsDouble(atom.value2));
      }
      for (size_t i = 0; i < n; ++i) {
        if (CompareValues<double>(values[i], atom.op, rhs, rhs2)) {
          (*mask)[i] = 1;
        }
      }
      return Status::OK();
    }
    case DataType::kString: {
      const auto& str = static_cast<const StringColumn&>(*column);
      if (!std::holds_alternative<std::string>(atom.value)) {
        return Status::InvalidArgument("string column '" + atom.column +
                                       "' compared with numeric constant");
      }
      const std::string& rhs = std::get<std::string>(atom.value);
      const auto& codes = str.codes();
      // Translate the string predicate into an equivalent predicate over
      // dictionary codes. Equality works on any dictionary; range predicates
      // need an order-preserving one.
      if (atom.op == CompareOp::kEq || atom.op == CompareOp::kNe) {
        Result<int32_t> code = str.CodeFor(rhs);
        if (!code.ok()) {
          // Constant not in the dictionary: Eq matches nothing, Ne all rows.
          if (atom.op == CompareOp::kNe) {
            std::fill(mask->begin(), mask->end(), 1);
          }
          return Status::OK();
        }
        const int32_t target = code.value();
        if (atom.op == CompareOp::kEq) {
          for (size_t i = 0; i < n; ++i) {
            if (codes[i] == target) (*mask)[i] = 1;
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            if (codes[i] != target) (*mask)[i] = 1;
          }
        }
        return Status::OK();
      }
      if (!str.order_preserving()) {
        return Status::InvalidArgument(
            "range predicate on non-order-preserving dictionary column '" +
            atom.column + "'");
      }
      // Half-open bounds over codes: [lower_bound(x), upper_bound(y)).
      int32_t lo = 0;
      int32_t hi = static_cast<int32_t>(str.dictionary().size());
      switch (atom.op) {
        case CompareOp::kLt:
          hi = str.LowerBoundCode(rhs);
          break;
        case CompareOp::kLe:
          hi = str.UpperBoundCode(rhs);
          break;
        case CompareOp::kGt:
          lo = str.UpperBoundCode(rhs);
          break;
        case CompareOp::kGe:
          lo = str.LowerBoundCode(rhs);
          break;
        case CompareOp::kBetween: {
          if (!std::holds_alternative<std::string>(atom.value2)) {
            return Status::InvalidArgument("between on string column '" +
                                           atom.column +
                                           "' needs string bounds");
          }
          lo = str.LowerBoundCode(rhs);
          hi = str.UpperBoundCode(std::get<std::string>(atom.value2));
          break;
        }
        default:
          return Status::Internal("unhandled string compare op");
      }
      for (size_t i = 0; i < n; ++i) {
        if (codes[i] >= lo && codes[i] < hi) (*mask)[i] = 1;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled column type");
}

}  // namespace

namespace kernel_internal {

/// Lowers `atom` against `input`. Mirrors EvalAtomInto exactly: same column
/// lookup, same constant coercions, and the same error statuses in the same
/// order, so both backends fail identically.
Result<CompiledAtom> CompileAtom(const Table& input, const Predicate& atom) {
  HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(atom.column));
  CompiledAtom out;
  out.op = atom.op;

  switch (column->type()) {
    case DataType::kInt32:
    case DataType::kInt64: {
      HETDB_ASSIGN_OR_RETURN(out.ilo, ValueAsInt64(atom.value));
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(out.ihi, ValueAsInt64(atom.value2));
      }
      if (column->type() == DataType::kInt32) {
        out.kind = CompiledAtom::Kind::kInt32Cmp;
        out.i32 = static_cast<const Int32Column&>(*column).values().data();
      } else {
        out.kind = CompiledAtom::Kind::kInt64Cmp;
        out.i64 = static_cast<const Int64Column&>(*column).values().data();
      }
      return out;
    }
    case DataType::kDouble: {
      HETDB_ASSIGN_OR_RETURN(out.dlo, ValueAsDouble(atom.value));
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(out.dhi, ValueAsDouble(atom.value2));
      }
      out.kind = CompiledAtom::Kind::kDoubleCmp;
      out.f64 = static_cast<const DoubleColumn&>(*column).values().data();
      return out;
    }
    case DataType::kString: {
      const auto& str = static_cast<const StringColumn&>(*column);
      if (!std::holds_alternative<std::string>(atom.value)) {
        return Status::InvalidArgument("string column '" + atom.column +
                                       "' compared with numeric constant");
      }
      const std::string& rhs = std::get<std::string>(atom.value);
      out.codes = str.codes().data();
      if (atom.op == CompareOp::kEq || atom.op == CompareOp::kNe) {
        Result<int32_t> code = str.CodeFor(rhs);
        if (!code.ok()) {
          out.kind = atom.op == CompareOp::kNe ? CompiledAtom::Kind::kAllRows
                                               : CompiledAtom::Kind::kNoRows;
          return out;
        }
        out.clo = code.value();
        out.kind = atom.op == CompareOp::kEq ? CompiledAtom::Kind::kCodeEq
                                             : CompiledAtom::Kind::kCodeNe;
        return out;
      }
      if (!str.order_preserving()) {
        return Status::InvalidArgument(
            "range predicate on non-order-preserving dictionary column '" +
            atom.column + "'");
      }
      out.clo = 0;
      out.chi = static_cast<int32_t>(str.dictionary().size());
      switch (atom.op) {
        case CompareOp::kLt:
          out.chi = str.LowerBoundCode(rhs);
          break;
        case CompareOp::kLe:
          out.chi = str.UpperBoundCode(rhs);
          break;
        case CompareOp::kGt:
          out.clo = str.UpperBoundCode(rhs);
          break;
        case CompareOp::kGe:
          out.clo = str.LowerBoundCode(rhs);
          break;
        case CompareOp::kBetween: {
          if (!std::holds_alternative<std::string>(atom.value2)) {
            return Status::InvalidArgument("between on string column '" +
                                           atom.column +
                                           "' needs string bounds");
          }
          out.clo = str.LowerBoundCode(rhs);
          out.chi = str.UpperBoundCode(std::get<std::string>(atom.value2));
          break;
        }
        default:
          return Status::Internal("unhandled string compare op");
      }
      out.kind = CompiledAtom::Kind::kCodeRange;
      return out;
    }
  }
  return Status::Internal("unhandled column type");
}

/// Branch-free OR of a comparison over `len` contiguous values into `out`.
/// `C` is the comparison domain (int64 for integer columns — the same
/// promotion the scalar path applies — double for double columns).
template <typename T, typename C>
void OrCmpInto(const T* v, CompareOp op, C rhs, C rhs2, size_t len,
               uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(static_cast<C>(v[i]) == rhs);
      return;
    case CompareOp::kNe:
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(static_cast<C>(v[i]) != rhs);
      return;
    case CompareOp::kLt:
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(static_cast<C>(v[i]) < rhs);
      return;
    case CompareOp::kLe:
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(static_cast<C>(v[i]) <= rhs);
      return;
    case CompareOp::kGt:
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(static_cast<C>(v[i]) > rhs);
      return;
    case CompareOp::kGe:
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(static_cast<C>(v[i]) >= rhs);
      return;
    case CompareOp::kBetween:
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>((static_cast<C>(v[i]) >= rhs) &
                                       (static_cast<C>(v[i]) <= rhs2));
      return;
  }
}

/// Ors `atom` over rows [begin, begin+len) into the morsel-local `out`.
void OrAtomInto(const CompiledAtom& atom, size_t begin, size_t len,
                uint8_t* out) {
  switch (atom.kind) {
    case CompiledAtom::Kind::kInt32Cmp:
      OrCmpInto<int32_t, int64_t>(atom.i32 + begin, atom.op, atom.ilo,
                                  atom.ihi, len, out);
      return;
    case CompiledAtom::Kind::kInt64Cmp:
      OrCmpInto<int64_t, int64_t>(atom.i64 + begin, atom.op, atom.ilo,
                                  atom.ihi, len, out);
      return;
    case CompiledAtom::Kind::kDoubleCmp:
      OrCmpInto<double, double>(atom.f64 + begin, atom.op, atom.dlo, atom.dhi,
                                len, out);
      return;
    case CompiledAtom::Kind::kCodeEq: {
      const int32_t* codes = atom.codes + begin;
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(codes[i] == atom.clo);
      return;
    }
    case CompiledAtom::Kind::kCodeNe: {
      const int32_t* codes = atom.codes + begin;
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>(codes[i] != atom.clo);
      return;
    }
    case CompiledAtom::Kind::kCodeRange: {
      const int32_t* codes = atom.codes + begin;
      for (size_t i = 0; i < len; ++i)
        out[i] |= static_cast<uint8_t>((codes[i] >= atom.clo) &
                                       (codes[i] < atom.chi));
      return;
    }
    case CompiledAtom::Kind::kAllRows:
      std::fill(out, out + len, uint8_t{1});
      return;
    case CompiledAtom::Kind::kNoRows:
      return;
  }
}

}  // namespace kernel_internal

namespace {

/// Scalar reference filter (row-at-a-time atoms over full columns).
Result<std::vector<uint32_t>> EvaluateFilterScalar(
    const Table& input, const ConjunctiveFilter& filter) {
  const size_t n = input.num_rows();
  std::vector<uint8_t> result(n, 1);
  std::vector<uint8_t> disjunct(n, 0);
  for (const Disjunction& disjunction : filter.conjuncts) {
    std::fill(disjunct.begin(), disjunct.end(), 0);
    for (const Predicate& atom : disjunction.atoms) {
      HETDB_RETURN_NOT_OK(EvalAtomInto(input, atom, &disjunct));
    }
    for (size_t i = 0; i < n; ++i) result[i] &= disjunct[i];
  }
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) matches += result[i];
  std::vector<uint32_t> rows;
  rows.reserve(matches);
  for (size_t i = 0; i < n; ++i) {
    if (result[i]) rows.push_back(static_cast<uint32_t>(i));
  }
  return rows;
}

/// Morsel-parallel filter. Phase A evaluates the whole CNF per morsel (the
/// morsel's columns stay cache-resident across all conjuncts) into a shared
/// keep-mask and counts survivors per morsel; after a serial prefix sum over
/// those counts, phase B materializes indices with the branchless
/// store-and-advance idiom into per-worker scratch, then block-copies each
/// morsel's survivors to its exclusive output range. Output is ascending row
/// ids — byte-identical to the scalar path.
Result<std::vector<uint32_t>> EvaluateFilterParallel(
    const Table& input, const ConjunctiveFilter& filter, KernelStats& stats) {
  const size_t n = input.num_rows();
  std::vector<std::vector<CompiledAtom>> conjuncts;
  conjuncts.reserve(filter.conjuncts.size());
  for (const Disjunction& disjunction : filter.conjuncts) {
    std::vector<CompiledAtom> atoms;
    atoms.reserve(disjunction.atoms.size());
    for (const Predicate& atom : disjunction.atoms) {
      HETDB_ASSIGN_OR_RETURN(CompiledAtom compiled, CompileAtom(input, atom));
      atoms.push_back(compiled);
    }
    conjuncts.push_back(std::move(atoms));
  }

  const size_t morsel = ConfigMorselRows();
  const size_t num_morsels = n == 0 ? 0 : (n + morsel - 1) / morsel;
  const int max_workers = MaxParallelWorkers(n, morsel);

  std::vector<uint8_t> keep(n, 1);
  std::vector<size_t> kept_in_morsel(num_morsels, 0);
  std::vector<std::vector<uint8_t>> disjunct_scratch(max_workers);

  const int workers = ParallelFor(
      n, morsel, [&](size_t begin, size_t end, int worker) {
        const size_t len = end - begin;
        std::vector<uint8_t>& dis = disjunct_scratch[worker];
        if (dis.size() < morsel) dis.resize(morsel);
        uint8_t* keep_at = keep.data() + begin;
        for (const std::vector<CompiledAtom>& atoms : conjuncts) {
          std::fill(dis.begin(), dis.begin() + len, uint8_t{0});
          for (const CompiledAtom& atom : atoms) {
            OrAtomInto(atom, begin, len, dis.data());
          }
          for (size_t i = 0; i < len; ++i) keep_at[i] &= dis[i];
        }
        size_t kept = 0;
        for (size_t i = 0; i < len; ++i) kept += keep_at[i];
        kept_in_morsel[begin / morsel] = kept;
      });
  RecordLoop(stats, n, morsel, workers);

  std::vector<size_t> offsets(num_morsels + 1, 0);
  for (size_t m = 0; m < num_morsels; ++m) {
    offsets[m + 1] = offsets[m] + kept_in_morsel[m];
  }

  std::vector<uint32_t> rows(offsets[num_morsels]);
  std::vector<std::vector<uint32_t>> index_scratch(max_workers);
  ParallelFor(n, morsel, [&](size_t begin, size_t end, int worker) {
    std::vector<uint32_t>& buf = index_scratch[worker];
    if (buf.size() < morsel) buf.resize(morsel);
    // Unconditional store, advance by the mask bit: no branch to mispredict.
    // The over-store lands in private scratch, never in a neighbour morsel's
    // output range, which is why the copy below is safe under concurrency.
    size_t out = 0;
    for (size_t i = begin; i < end; ++i) {
      buf[out] = static_cast<uint32_t>(i);
      out += keep[i];
    }
    if (out > 0) {
      std::memcpy(rows.data() + offsets[begin / morsel], buf.data(),
                  out * sizeof(uint32_t));
    }
  });
  return rows;
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

struct JoinMatches {
  std::vector<uint32_t> build_rows;
  std::vector<uint32_t> probe_rows;
};

/// Concatenates per-morsel match buffers in morsel (= probe row) order.
JoinMatches ConcatMorselMatches(
    const std::vector<std::vector<uint32_t>>& morsel_build,
    const std::vector<std::vector<uint32_t>>& morsel_probe) {
  const size_t morsels = morsel_build.size();
  std::vector<size_t> match_off(morsels + 1, 0);
  for (size_t m = 0; m < morsels; ++m) {
    match_off[m + 1] = match_off[m] + morsel_build[m].size();
  }
  JoinMatches matches;
  matches.build_rows.resize(match_off[morsels]);
  matches.probe_rows.resize(match_off[morsels]);
  ParallelFor(morsels, 1, [&](size_t begin, size_t end, int) {
    for (size_t m = begin; m < end; ++m) {
      if (morsel_build[m].empty()) continue;
      std::memcpy(matches.build_rows.data() + match_off[m],
                  morsel_build[m].data(),
                  morsel_build[m].size() * sizeof(uint32_t));
      std::memcpy(matches.probe_rows.data() + match_off[m],
                  morsel_probe[m].data(),
                  morsel_probe[m].size() * sizeof(uint32_t));
    }
  });
  return matches;
}

/// Fast path for dense integer build keys (every SSB/TPC-H dimension key):
/// a direct-address table over [min, max] replaces hashing entirely — the
/// probe loop is a bounds check plus one L1/L2 load. `heads[k]` holds the
/// first build row with key `min + k`; duplicate rows chain through `next`
/// in ascending order, replaying the scalar match order.
template <typename TB, typename TP>
JoinMatches DirectJoinMatches(const TB* build_keys, size_t build_rows,
                              uint64_t min_key, uint64_t range,
                              const TP* probe_keys, size_t probe_rows,
                              KernelStats& stats) {
  std::vector<uint32_t> heads(range + 1, kNoEntry);
  std::vector<uint32_t> tails(range + 1, kNoEntry);
  std::vector<uint32_t> next(build_rows, kNoEntry);
  // Build serially: the build side is the small (dimension) input, and the
  // serial loop keeps duplicate chains in ascending-row order for free.
  for (size_t i = 0; i < build_rows; ++i) {
    const uint64_t k =
        static_cast<uint64_t>(static_cast<int64_t>(build_keys[i])) - min_key;
    if (heads[k] == kNoEntry) {
      heads[k] = static_cast<uint32_t>(i);
    } else {
      next[tails[k]] = static_cast<uint32_t>(i);
    }
    tails[k] = static_cast<uint32_t>(i);
  }

  const size_t morsel = ConfigMorselRows();
  const size_t probe_morsels =
      probe_rows == 0 ? 0 : (probe_rows + morsel - 1) / morsel;
  std::vector<std::vector<uint32_t>> morsel_build(probe_morsels);
  std::vector<std::vector<uint32_t>> morsel_probe(probe_morsels);
  const int workers = ParallelFor(
      probe_rows, morsel, [&](size_t begin, size_t end, int) {
        std::vector<uint32_t>& bmatch = morsel_build[begin / morsel];
        std::vector<uint32_t>& pmatch = morsel_probe[begin / morsel];
        bmatch.reserve(end - begin);
        pmatch.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          const uint64_t k =
              static_cast<uint64_t>(static_cast<int64_t>(probe_keys[i])) -
              min_key;
          if (k > range) continue;  // also catches keys below min (wraps)
          for (uint32_t e = heads[k]; e != kNoEntry; e = next[e]) {
            bmatch.push_back(e);
            pmatch.push_back(static_cast<uint32_t>(i));
          }
        }
      });
  RecordLoop(stats, probe_rows, morsel, workers);
  return ConcatMorselMatches(morsel_build, morsel_probe);
}

/// Cache-conscious parallel equi-join over integer keys.
///
/// Build side: a stable two-pass radix partitioning by hash prefix (morsel
/// histograms -> serial offsets -> morsel scatter) yields per-partition entry
/// arrays ordered by ascending build row; each partition then gets a private
/// open-addressing linear-probe table sized 2x its entries, small enough to
/// stay cache-resident while it is built and probed. Duplicate keys chain
/// through `next` links in ascending-row order.
///
/// Probe side: morsels look up their keys and append matches to per-morsel
/// buffers, which a prefix sum concatenates in probe-row order — the exact
/// (probe ascending, build ascending within key) order of the scalar path.
template <typename TB, typename TP>
JoinMatches PartitionedJoinMatches(const TB* build_keys, size_t build_rows,
                                   const TP* probe_keys, size_t probe_rows,
                                   KernelStats& stats) {
  const size_t morsel = ConfigMorselRows();
  constexpr size_t kMaxParts = 64;

  size_t parts = 1;
  while (parts < kMaxParts && parts * morsel < build_rows) parts <<= 1;
  const int part_bits = std::countr_zero(parts);
  auto part_of = [part_bits](uint64_t hash) -> size_t {
    return part_bits == 0 ? 0 : static_cast<size_t>(hash >> (64 - part_bits));
  };

  // Phase 1: per-(morsel, partition) histograms of build keys.
  const size_t build_morsels =
      build_rows == 0 ? 0 : (build_rows + morsel - 1) / morsel;
  std::vector<uint32_t> hist(build_morsels * parts, 0);
  int workers = ParallelFor(
      build_rows, morsel, [&](size_t begin, size_t end, int) {
        uint32_t* h = hist.data() + (begin / morsel) * parts;
        for (size_t i = begin; i < end; ++i) {
          const auto key = static_cast<int64_t>(build_keys[i]);
          ++h[part_of(MixHash(static_cast<uint64_t>(key)))];
        }
      });
  RecordLoop(stats, build_rows, morsel, workers);

  // Serial pass: partition-major offsets. Iterating morsels in order within
  // each partition keeps the scatter stable (ascending build row).
  std::vector<size_t> scatter_pos(build_morsels * parts);
  std::vector<size_t> part_begin(parts + 1, 0);
  size_t run = 0;
  for (size_t p = 0; p < parts; ++p) {
    part_begin[p] = run;
    for (size_t m = 0; m < build_morsels; ++m) {
      scatter_pos[m * parts + p] = run;
      run += hist[m * parts + p];
    }
  }
  part_begin[parts] = run;

  // Phase 2: stable scatter into partition-contiguous entry storage.
  struct JoinEntry {
    int64_t key;
    uint32_t row;
  };
  std::vector<JoinEntry> entries(build_rows);
  ParallelFor(build_rows, morsel, [&](size_t begin, size_t end, int) {
    size_t cursor[kMaxParts];
    std::copy_n(scatter_pos.data() + (begin / morsel) * parts, parts, cursor);
    for (size_t i = begin; i < end; ++i) {
      const auto key = static_cast<int64_t>(build_keys[i]);
      const size_t p = part_of(MixHash(static_cast<uint64_t>(key)));
      entries[cursor[p]++] = {key, static_cast<uint32_t>(i)};
    }
  });

  // Phase 3: one open-addressing table per partition (linear probing,
  // `head == kNoEntry` marks an empty slot). Partitions build in parallel;
  // within a partition, entries insert in ascending-row order so duplicate
  // chains replay the scalar backend's first-match-then-overflow order.
  struct Slot {
    int64_t key;
    uint32_t head;
    uint32_t tail;
  };
  std::vector<size_t> table_off(parts + 1, 0);
  std::vector<size_t> table_mask(parts);
  for (size_t p = 0; p < parts; ++p) {
    const size_t count = part_begin[p + 1] - part_begin[p];
    const size_t size = std::bit_ceil(std::max<size_t>(2, 2 * count));
    table_mask[p] = size - 1;
    table_off[p + 1] = table_off[p] + size;
  }
  std::vector<Slot> slots(table_off[parts], Slot{0, kNoEntry, 0});
  std::vector<uint32_t> next(build_rows, kNoEntry);
  ParallelFor(parts, 1, [&](size_t begin, size_t end, int) {
    for (size_t p = begin; p < end; ++p) {
      Slot* table = slots.data() + table_off[p];
      const size_t mask = table_mask[p];
      for (size_t e = part_begin[p]; e < part_begin[p + 1]; ++e) {
        const JoinEntry& entry = entries[e];
        size_t idx = MixHash(static_cast<uint64_t>(entry.key)) & mask;
        while (true) {
          Slot& slot = table[idx];
          if (slot.head == kNoEntry) {
            slot = {entry.key, static_cast<uint32_t>(e),
                    static_cast<uint32_t>(e)};
            break;
          }
          if (slot.key == entry.key) {
            next[slot.tail] = static_cast<uint32_t>(e);
            slot.tail = static_cast<uint32_t>(e);
            break;
          }
          idx = (idx + 1) & mask;
        }
      }
    }
  });

  // Phase 4: probe morsels into per-morsel match buffers.
  const size_t probe_morsels =
      probe_rows == 0 ? 0 : (probe_rows + morsel - 1) / morsel;
  std::vector<std::vector<uint32_t>> morsel_build(probe_morsels);
  std::vector<std::vector<uint32_t>> morsel_probe(probe_morsels);
  workers = ParallelFor(
      probe_rows, morsel, [&](size_t begin, size_t end, int) {
        std::vector<uint32_t>& bmatch = morsel_build[begin / morsel];
        std::vector<uint32_t>& pmatch = morsel_probe[begin / morsel];
        // ~1 match per probe row (PK-FK); reserving that keeps the append
        // loop realloc-free.
        bmatch.reserve(end - begin);
        pmatch.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          const auto key = static_cast<int64_t>(probe_keys[i]);
          const uint64_t hash = MixHash(static_cast<uint64_t>(key));
          const size_t p = part_of(hash);
          const Slot* table = slots.data() + table_off[p];
          const size_t mask = table_mask[p];
          size_t idx = hash & mask;
          while (true) {
            const Slot& slot = table[idx];
            if (slot.head == kNoEntry) break;
            if (slot.key == key) {
              for (uint32_t e = slot.head; e != kNoEntry; e = next[e]) {
                bmatch.push_back(entries[e].row);
                pmatch.push_back(static_cast<uint32_t>(i));
              }
              break;
            }
            idx = (idx + 1) & mask;
          }
        }
      });
  RecordLoop(stats, probe_rows, morsel, workers);

  // Phase 5: concatenate per-morsel buffers in morsel (= probe row) order.
  return ConcatMorselMatches(morsel_build, morsel_probe);
}

/// Parallel join entry point: prescans the build keys and routes dense key
/// domains (range at most 8x the build cardinality — every generated SSB /
/// TPC-H dimension key) to the direct-address table, everything else to the
/// partitioned hash join.
template <typename TB, typename TP>
JoinMatches ParallelJoinMatches(const TB* build_keys, size_t build_rows,
                                const TP* probe_keys, size_t probe_rows,
                                KernelStats& stats) {
  if (build_rows > 0) {
    int64_t min_key = static_cast<int64_t>(build_keys[0]);
    int64_t max_key = min_key;
    for (size_t i = 1; i < build_rows; ++i) {
      const auto key = static_cast<int64_t>(build_keys[i]);
      min_key = std::min(min_key, key);
      max_key = std::max(max_key, key);
    }
    const uint64_t range =
        static_cast<uint64_t>(max_key) - static_cast<uint64_t>(min_key);
    const uint64_t dense_limit =
        std::max<uint64_t>(8192, 8 * static_cast<uint64_t>(build_rows));
    if (range < dense_limit) {
      return DirectJoinMatches(build_keys, build_rows,
                               static_cast<uint64_t>(min_key), range,
                               probe_keys, probe_rows, stats);
    }
  }
  return PartitionedJoinMatches(build_keys, build_rows, probe_keys, probe_rows,
                                stats);
}

/// Scalar reference join: first-match map plus overflow vectors.
JoinMatches ScalarJoinMatches(const Column& build_key_col, size_t build_rows,
                              const Column& probe_key_col, size_t probe_rows) {
  std::unordered_map<int64_t, uint32_t> first_match;
  std::unordered_map<int64_t, std::vector<uint32_t>> overflow;
  first_match.reserve(build_rows * 2);
  for (size_t i = 0; i < build_rows; ++i) {
    const int64_t key = IntKeyAt(build_key_col, i);
    auto [it, inserted] = first_match.emplace(key, static_cast<uint32_t>(i));
    if (!inserted) overflow[key].push_back(static_cast<uint32_t>(i));
  }

  JoinMatches matches;
  // A PK-FK probe emits about one match per probe row; reserving that guess
  // removes nearly all reallocation from the probe loop.
  matches.build_rows.reserve(probe_rows);
  matches.probe_rows.reserve(probe_rows);
  for (size_t i = 0; i < probe_rows; ++i) {
    const int64_t key = IntKeyAt(probe_key_col, i);
    auto it = first_match.find(key);
    if (it == first_match.end()) continue;
    matches.build_rows.push_back(it->second);
    matches.probe_rows.push_back(static_cast<uint32_t>(i));
    auto ov = overflow.find(key);
    if (ov != overflow.end()) {
      for (uint32_t extra : ov->second) {
        matches.build_rows.push_back(extra);
        matches.probe_rows.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  return matches;
}

Result<TablePtr> MaterializeJoinOutput(const Table& build, const Table& probe,
                                       const JoinOutputSpec& output_spec,
                                       const JoinMatches& matches,
                                       const std::string& name) {
  if (!output_spec.build_aliases.empty() &&
      output_spec.build_aliases.size() != output_spec.build_columns.size()) {
    return Status::InvalidArgument("build_aliases size mismatch");
  }
  if (!output_spec.probe_aliases.empty() &&
      output_spec.probe_aliases.size() != output_spec.probe_columns.size()) {
    return Status::InvalidArgument("probe_aliases size mismatch");
  }
  auto output = std::make_shared<Table>(name);
  for (size_t i = 0; i < output_spec.build_columns.size(); ++i) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column,
                           build.GetColumn(output_spec.build_columns[i]));
    const std::string& alias = output_spec.build_aliases.empty()
                                   ? output_spec.build_columns[i]
                                   : output_spec.build_aliases[i];
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*column, matches.build_rows, alias)));
  }
  for (size_t i = 0; i < output_spec.probe_columns.size(); ++i) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column,
                           probe.GetColumn(output_spec.probe_columns[i]));
    const std::string& alias = output_spec.probe_aliases.empty()
                                   ? output_spec.probe_columns[i]
                                   : output_spec.probe_aliases[i];
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*column, matches.probe_rows, alias)));
  }
  return output;
}

}  // namespace

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

namespace kernel_internal {

AggInput ClassifyAggInput(const ColumnPtr& column, size_t num_rows) {
  AggInput input;
  if (column == nullptr) return input;  // COUNT(*)
  switch (column->type()) {
    case DataType::kInt32:
      input.kind = AggInput::Kind::kInt32;
      input.i32 = static_cast<const Int32Column&>(*column).values().data();
      return input;
    case DataType::kInt64:
      input.kind = AggInput::Kind::kInt64;
      input.i64 = static_cast<const Int64Column&>(*column).values().data();
      return input;
    case DataType::kDouble:
      input.kind = AggInput::Kind::kDouble;
      input.f64 = static_cast<const DoubleColumn&>(*column).values().data();
      return input;
    case DataType::kString:
      if (num_rows > 0) {
        HETDB_LOG(Fatal) << "numeric access on string column "
                         << column->name();
      }
      input.kind = AggInput::Kind::kDouble;
      return input;
  }
  return input;
}

/// Converts accumulators to output columns; shared so both backends apply
/// the identical typing rules (COUNT and integer SUM/MIN/MAX stay int64,
/// AVG and double inputs produce doubles).
Status AppendAggregateColumns(const std::vector<AggregateSpec>& aggregates,
                              const std::vector<AggInput>& inputs,
                              const std::vector<std::vector<Acc>>& accs,
                              size_t num_groups, Table* output) {
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggregateSpec& spec = aggregates[a];
    const AggInput& in = inputs[a];
    const auto& acc = accs[a];
    const bool integer_input = in.kind == AggInput::Kind::kInt32 ||
                               in.kind == AggInput::Kind::kInt64;
    const bool integer_output =
        spec.fn == AggregateFn::kCount ||
        (integer_input && spec.fn != AggregateFn::kAvg);
    if (integer_output) {
      std::vector<int64_t> values(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        switch (spec.fn) {
          case AggregateFn::kSum:
            values[g] = acc[g].isum;
            break;
          case AggregateFn::kCount:
            values[g] = acc[g].count;
            break;
          case AggregateFn::kMin:
            values[g] = acc[g].count > 0 ? acc[g].imin : 0;
            break;
          case AggregateFn::kMax:
            values[g] = acc[g].count > 0 ? acc[g].imax : 0;
            break;
          case AggregateFn::kAvg:
            values[g] = 0;  // unreachable: AVG is never integer_output
            break;
        }
      }
      HETDB_RETURN_NOT_OK(output->AddColumn(
          std::make_shared<Int64Column>(spec.output_name, std::move(values))));
    } else {
      std::vector<double> values(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        if (integer_input) {  // only AVG reaches here
          values[g] = acc[g].count > 0
                          ? static_cast<double>(acc[g].isum) /
                                static_cast<double>(acc[g].count)
                          : 0;
          continue;
        }
        switch (spec.fn) {
          case AggregateFn::kSum:
            values[g] = acc[g].dsum;
            break;
          case AggregateFn::kCount:
            values[g] = static_cast<double>(acc[g].count);  // unreachable
            break;
          case AggregateFn::kMin:
            values[g] = acc[g].count > 0 ? acc[g].dmin : 0;
            break;
          case AggregateFn::kMax:
            values[g] = acc[g].count > 0 ? acc[g].dmax : 0;
            break;
          case AggregateFn::kAvg:
            values[g] = acc[g].count > 0
                            ? acc[g].dsum / static_cast<double>(acc[g].count)
                            : 0;
            break;
        }
      }
      HETDB_RETURN_NOT_OK(output->AddColumn(std::make_shared<DoubleColumn>(
          spec.output_name, std::move(values))));
    }
  }
  return Status::OK();
}

}  // namespace kernel_internal

namespace {

Status ResolveAggregateColumns(const Table& input,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggregateSpec>& aggregates,
                               std::vector<ColumnPtr>* group_cols,
                               std::vector<ColumnPtr>* agg_inputs) {
  for (const std::string& col_name : group_by) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(col_name));
    group_cols->push_back(std::move(column));
  }
  for (const AggregateSpec& spec : aggregates) {
    if (spec.fn == AggregateFn::kCount && spec.input_column.empty()) {
      agg_inputs->push_back(nullptr);  // COUNT(*)
      continue;
    }
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column,
                           input.GetColumn(spec.input_column));
    agg_inputs->push_back(std::move(column));
  }
  return Status::OK();
}

/// Scalar reference aggregation: byte-string group keys, one single pass
/// over the input updating every aggregate's accumulator per row (instead of
/// the former one-full-scan-per-aggregate loop).
Result<TablePtr> AggregateScalar(const Table& input,
                                 const std::vector<std::string>& group_by,
                                 const std::vector<AggregateSpec>& aggregates,
                                 const std::string& name) {
  const size_t n = input.num_rows();
  std::vector<ColumnPtr> group_cols;
  std::vector<ColumnPtr> agg_inputs;
  HETDB_RETURN_NOT_OK(ResolveAggregateColumns(input, group_by, aggregates,
                                              &group_cols, &agg_inputs));

  // Encode the composite group key as raw bytes.
  std::unordered_map<std::string, uint32_t> groups;
  std::vector<uint32_t> representative_row;  // one input row per group
  std::vector<uint32_t> group_of_row(n);
  std::string key;
  for (size_t i = 0; i < n; ++i) {
    key.clear();
    for (const ColumnPtr& column : group_cols) {
      int64_t encoded;
      if (column->type() == DataType::kString) {
        encoded = static_cast<const StringColumn&>(*column).code(i);
      } else {
        encoded = IntKeyAt(*column, i);
      }
      key.append(reinterpret_cast<const char*>(&encoded), sizeof(encoded));
    }
    auto [it, inserted] =
        groups.emplace(key, static_cast<uint32_t>(representative_row.size()));
    if (inserted) representative_row.push_back(static_cast<uint32_t>(i));
    group_of_row[i] = it->second;
  }
  const size_t num_groups = representative_row.size();

  std::vector<AggInput> inputs;
  inputs.reserve(agg_inputs.size());
  for (const ColumnPtr& column : agg_inputs) {
    inputs.push_back(ClassifyAggInput(column, n));
  }
  std::vector<std::vector<Acc>> accs(aggregates.size(),
                                     std::vector<Acc>(num_groups));
  for (size_t i = 0; i < n; ++i) {
    const uint32_t g = group_of_row[i];
    for (size_t a = 0; a < inputs.size(); ++a) {
      UpdateAcc(inputs[a], i, accs[a][g]);
    }
  }

  auto output = std::make_shared<Table>(name);
  for (const ColumnPtr& column : group_cols) {
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*column, representative_row)));
  }
  HETDB_RETURN_NOT_OK(AppendAggregateColumns(aggregates, inputs, accs,
                                             num_groups, output.get()));
  return output;
}

/// One group-by column lowered to a typed pointer for key packing.
struct KeyCol {
  enum class Kind { kInt32, kInt64, kCodes };
  Kind kind = Kind::kInt32;
  const int32_t* i32 = nullptr;
  const int64_t* i64 = nullptr;
  const int32_t* codes = nullptr;

  int64_t At(size_t row) const {
    switch (kind) {
      case Kind::kInt32:
        return i32[row];
      case Kind::kInt64:
        return i64[row];
      case Kind::kCodes:
        return codes[row];
    }
    return 0;
  }
};

/// Worker-local open-addressing group table over packed 64-bit keys.
struct LocalGroups {
  std::vector<uint64_t> slot_keys;
  std::vector<uint32_t> slot_gids;  // kNoEntry = empty slot
  std::vector<uint64_t> keys;       // local gid -> packed key
  std::vector<uint32_t> min_rows;   // local gid -> smallest row seen here
  std::vector<uint64_t> counts;     // local gid -> rows seen here

  void Init() {
    slot_keys.assign(1024, 0);
    slot_gids.assign(1024, kNoEntry);
  }

  uint32_t Add(uint64_t key, uint32_t row) {
    if ((keys.size() + 1) * 2 > slot_gids.size()) Grow();
    const size_t mask = slot_gids.size() - 1;
    size_t idx = MixHash(key) & mask;
    while (true) {
      const uint32_t gid = slot_gids[idx];
      if (gid == kNoEntry) {
        const auto fresh = static_cast<uint32_t>(keys.size());
        slot_keys[idx] = key;
        slot_gids[idx] = fresh;
        keys.push_back(key);
        min_rows.push_back(row);
        counts.push_back(1);
        return fresh;
      }
      if (slot_keys[idx] == key) {
        min_rows[gid] = std::min(min_rows[gid], row);
        ++counts[gid];
        return gid;
      }
      idx = (idx + 1) & mask;
    }
  }

  void Grow() {
    const size_t new_size = slot_gids.size() * 2;
    std::vector<uint64_t> old_keys = std::move(slot_keys);
    std::vector<uint32_t> old_gids = std::move(slot_gids);
    slot_keys.assign(new_size, 0);
    slot_gids.assign(new_size, kNoEntry);
    const size_t mask = new_size - 1;
    for (size_t i = 0; i < old_gids.size(); ++i) {
      if (old_gids[i] == kNoEntry) continue;
      size_t idx = MixHash(old_keys[i]) & mask;
      while (slot_gids[idx] != kNoEntry) idx = (idx + 1) & mask;
      slot_keys[idx] = old_keys[i];
      slot_gids[idx] = old_gids[i];
    }
  }
};

/// Morsel-parallel aggregation over packed 64-bit group keys.
///
/// A parallel min/max prescan sizes each key column's bit field; if the
/// composite key does not fit in 64 bits the kernel falls back to the scalar
/// backend (identical results either way). Phase 1 builds worker-local group
/// tables (thread-local preaggregation: no shared-table contention) and tags
/// every row with its local gid. A serial merge orders the global groups by
/// their smallest input row — exactly the scalar backend's first-seen order —
/// and remaps (worker, local gid) to global ranks. A serial stable scatter
/// then groups row ids, and phase 2 accumulates each group's rows in
/// ascending order (the scalar FP operation order) in parallel over groups.
Result<TablePtr> AggregateParallel(const Table& input,
                                   const std::vector<std::string>& group_by,
                                   const std::vector<AggregateSpec>& aggregates,
                                   const std::string& name,
                                   KernelStats& stats) {
  const size_t n = input.num_rows();
  std::vector<ColumnPtr> group_cols;
  std::vector<ColumnPtr> agg_inputs;
  HETDB_RETURN_NOT_OK(ResolveAggregateColumns(input, group_by, aggregates,
                                              &group_cols, &agg_inputs));

  const size_t num_keys = group_cols.size();
  std::vector<KeyCol> key_cols(num_keys);
  for (size_t c = 0; c < num_keys; ++c) {
    const Column& column = *group_cols[c];
    switch (column.type()) {
      case DataType::kInt32:
        key_cols[c].kind = KeyCol::Kind::kInt32;
        key_cols[c].i32 =
            static_cast<const Int32Column&>(column).values().data();
        break;
      case DataType::kInt64:
        key_cols[c].kind = KeyCol::Kind::kInt64;
        key_cols[c].i64 =
            static_cast<const Int64Column&>(column).values().data();
        break;
      case DataType::kString:
        key_cols[c].kind = KeyCol::Kind::kCodes;
        key_cols[c].codes =
            static_cast<const StringColumn&>(column).codes().data();
        break;
      case DataType::kDouble:
        // Same programming error the scalar backend traps in IntKeyAt.
        HETDB_LOG(Fatal) << "group-by on double column " << column.name();
    }
  }

  const size_t morsel = ConfigMorselRows();
  const size_t num_morsels = (n + morsel - 1) / morsel;
  const int max_workers = MaxParallelWorkers(n, morsel);

  // Prescan: per-column min/max (per worker, then reduced) for bit packing.
  std::vector<int64_t> wmin(static_cast<size_t>(max_workers) * num_keys,
                            std::numeric_limits<int64_t>::max());
  std::vector<int64_t> wmax(static_cast<size_t>(max_workers) * num_keys,
                            std::numeric_limits<int64_t>::min());
  ParallelFor(n, morsel, [&](size_t begin, size_t end, int worker) {
    int64_t* mins = wmin.data() + static_cast<size_t>(worker) * num_keys;
    int64_t* maxs = wmax.data() + static_cast<size_t>(worker) * num_keys;
    for (size_t c = 0; c < num_keys; ++c) {
      const KeyCol& key_col = key_cols[c];
      int64_t lo = mins[c], hi = maxs[c];
      for (size_t i = begin; i < end; ++i) {
        const int64_t v = key_col.At(i);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      mins[c] = lo;
      maxs[c] = hi;
    }
  });
  std::vector<int64_t> cmin(num_keys, std::numeric_limits<int64_t>::max());
  std::vector<int64_t> cmax(num_keys, std::numeric_limits<int64_t>::min());
  for (int w = 0; w < max_workers; ++w) {
    for (size_t c = 0; c < num_keys; ++c) {
      cmin[c] = std::min(cmin[c], wmin[static_cast<size_t>(w) * num_keys + c]);
      cmax[c] = std::max(cmax[c], wmax[static_cast<size_t>(w) * num_keys + c]);
    }
  }

  std::vector<int> bits(num_keys, 0);
  int total_bits = 0;
  for (size_t c = 0; c < num_keys; ++c) {
    const uint64_t range = static_cast<uint64_t>(cmax[c]) -
                           static_cast<uint64_t>(cmin[c]);
    bits[c] = std::bit_width(range);
    total_bits += bits[c];
  }
  if (total_bits > 64) {
    // Composite key too wide to pack: the scalar byte-string path handles it.
    return AggregateScalar(input, group_by, aggregates, name);
  }

  auto pack = [&](size_t row) -> uint64_t {
    uint64_t key = 0;
    for (size_t c = 0; c < num_keys; ++c) {
      if (bits[c] == 0) continue;  // constant column adds no information
      const uint64_t enc = static_cast<uint64_t>(key_cols[c].At(row)) -
                           static_cast<uint64_t>(cmin[c]);
      // bits[c] == 64 implies this is the only contributing column; the
      // guarded form avoids the undefined 64-bit shift.
      key = bits[c] == 64 ? enc : ((key << bits[c]) | enc);
    }
    return key;
  };

  // Phase 1: worker-local preaggregation tables; rows keep their local gid.
  std::vector<LocalGroups> locals(max_workers);
  std::vector<uint32_t> local_gid_of_row(n);
  std::vector<int> morsel_worker(num_morsels, 0);
  const int workers = ParallelFor(
      n, morsel, [&](size_t begin, size_t end, int worker) {
        LocalGroups& local = locals[worker];
        if (local.slot_gids.empty()) local.Init();
        morsel_worker[begin / morsel] = worker;
        for (size_t i = begin; i < end; ++i) {
          local_gid_of_row[i] =
              local.Add(pack(i), static_cast<uint32_t>(i));
        }
      });
  RecordLoop(stats, n, morsel, workers);

  // Serial merge: unify worker tables, order groups by smallest input row
  // (= the scalar backend's first-seen order), remap local gids to ranks.
  std::unordered_map<uint64_t, uint32_t> merged_id;
  std::vector<uint32_t> merged_min;
  std::vector<uint64_t> merged_count;
  std::vector<std::vector<uint32_t>> remap(max_workers);
  for (int w = 0; w < max_workers; ++w) {
    const LocalGroups& local = locals[w];
    remap[w].resize(local.keys.size());
    for (size_t l = 0; l < local.keys.size(); ++l) {
      auto [it, inserted] = merged_id.emplace(
          local.keys[l], static_cast<uint32_t>(merged_min.size()));
      if (inserted) {
        merged_min.push_back(local.min_rows[l]);
        merged_count.push_back(local.counts[l]);
      } else {
        merged_min[it->second] =
            std::min(merged_min[it->second], local.min_rows[l]);
        merged_count[it->second] += local.counts[l];
      }
      remap[w][l] = it->second;
    }
  }
  const size_t num_groups = merged_min.size();
  std::vector<uint32_t> order(num_groups);
  std::iota(order.begin(), order.end(), 0u);
  // Each group's min row is distinct, so the order is total.
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return merged_min[a] < merged_min[b];
  });
  std::vector<uint32_t> rank(num_groups);
  for (size_t r = 0; r < num_groups; ++r) rank[order[r]] = r;
  for (int w = 0; w < max_workers; ++w) {
    for (uint32_t& id : remap[w]) id = rank[id];
  }

  std::vector<uint32_t> representative_row(num_groups);
  std::vector<size_t> group_off(num_groups + 1, 0);
  for (size_t r = 0; r < num_groups; ++r) {
    representative_row[r] = merged_min[order[r]];
    group_off[r + 1] = group_off[r] + merged_count[order[r]];
  }

  // Serial stable scatter: rows grouped, ascending within each group. Kept
  // serial on purpose — a parallel version needs per-(morsel, group)
  // histograms, which degenerate when every row is its own group.
  std::vector<uint32_t> rows_by_group(n);
  std::vector<size_t> cursor(group_off.begin(), group_off.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t g = remap[morsel_worker[i / morsel]][local_gid_of_row[i]];
    rows_by_group[cursor[g]++] = static_cast<uint32_t>(i);
  }

  // Phase 2: accumulate, parallel over groups; each group replays its rows
  // in ascending order so double sums match the scalar backend bit-for-bit.
  std::vector<AggInput> inputs;
  inputs.reserve(agg_inputs.size());
  for (const ColumnPtr& column : agg_inputs) {
    inputs.push_back(ClassifyAggInput(column, n));
  }
  std::vector<std::vector<Acc>> accs(aggregates.size(),
                                     std::vector<Acc>(num_groups));
  constexpr size_t kGroupMorsel = 64;
  ParallelFor(num_groups, kGroupMorsel,
              [&](size_t gbegin, size_t gend, int) {
                for (size_t g = gbegin; g < gend; ++g) {
                  for (size_t r = group_off[g]; r < group_off[g + 1]; ++r) {
                    const size_t row = rows_by_group[r];
                    for (size_t a = 0; a < inputs.size(); ++a) {
                      UpdateAcc(inputs[a], row, accs[a][g]);
                    }
                  }
                }
              });

  auto output = std::make_shared<Table>(name);
  for (const ColumnPtr& column : group_cols) {
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*column, representative_row)));
  }
  HETDB_RETURN_NOT_OK(AppendAggregateColumns(aggregates, inputs, accs,
                                             num_groups, output.get()));
  return output;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public kernels
// ---------------------------------------------------------------------------

Result<std::vector<uint32_t>> EvaluateFilter(const Table& input,
                                             const ConjunctiveFilter& filter) {
  static KernelStats stats("filter");
  KernelTimer timer(stats);
  if (UseParallelBackend()) {
    return EvaluateFilterParallel(input, filter, stats);
  }
  return EvaluateFilterScalar(input, filter);
}

Result<TablePtr> GatherRows(const Table& input,
                            const std::vector<uint32_t>& rows,
                            const std::string& name) {
  auto output = std::make_shared<Table>(name);
  for (const ColumnPtr& column : input.columns()) {
    ColumnPtr gathered = GatherColumn(*column, rows);
    if (gathered == nullptr) return Status::Internal("gather failed");
    HETDB_RETURN_NOT_OK(output->AddColumn(std::move(gathered)));
  }
  return output;
}

Result<TablePtr> HashJoin(const Table& build, const std::string& build_key,
                          const Table& probe, const std::string& probe_key,
                          const JoinOutputSpec& output_spec,
                          const std::string& name) {
  static KernelStats stats("hash_join");
  KernelTimer timer(stats);

  HETDB_ASSIGN_OR_RETURN(ColumnPtr build_key_col, build.GetColumn(build_key));
  HETDB_ASSIGN_OR_RETURN(ColumnPtr probe_key_col, probe.GetColumn(probe_key));
  if (build_key_col->type() != DataType::kInt32 &&
      build_key_col->type() != DataType::kInt64) {
    return Status::InvalidArgument("join key '" + build_key +
                                   "' must be integer");
  }

  const size_t build_rows = build.num_rows();
  const size_t probe_rows = probe.num_rows();
  JoinMatches matches;
  if (UseParallelBackend()) {
    // Probe keys face the same integer requirement the scalar path enforces
    // (fatally) in IntKeyAt.
    HETDB_CHECK(probe_key_col->type() == DataType::kInt32 ||
                probe_key_col->type() == DataType::kInt64);
    auto dispatch = [&](const auto& build_values, const auto& probe_values) {
      matches = ParallelJoinMatches(build_values.data(), build_rows,
                                       probe_values.data(), probe_rows, stats);
    };
    if (build_key_col->type() == DataType::kInt32) {
      const auto& bv = static_cast<const Int32Column&>(*build_key_col).values();
      if (probe_key_col->type() == DataType::kInt32) {
        dispatch(bv, static_cast<const Int32Column&>(*probe_key_col).values());
      } else {
        dispatch(bv, static_cast<const Int64Column&>(*probe_key_col).values());
      }
    } else {
      const auto& bv = static_cast<const Int64Column&>(*build_key_col).values();
      if (probe_key_col->type() == DataType::kInt32) {
        dispatch(bv, static_cast<const Int32Column&>(*probe_key_col).values());
      } else {
        dispatch(bv, static_cast<const Int64Column&>(*probe_key_col).values());
      }
    }
  } else {
    matches = ScalarJoinMatches(*build_key_col, build_rows, *probe_key_col,
                                probe_rows);
  }
  return MaterializeJoinOutput(build, probe, output_spec, matches, name);
}

Result<TablePtr> Aggregate(const Table& input,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggregateSpec>& aggregates,
                           const std::string& name) {
  static KernelStats stats("aggregate");
  KernelTimer timer(stats);
  if (UseParallelBackend() && input.num_rows() > 0) {
    return AggregateParallel(input, group_by, aggregates, name, stats);
  }
  return AggregateScalar(input, group_by, aggregates, name);
}

Result<TablePtr> Sort(const Table& input, const std::vector<SortKey>& keys,
                      const std::string& name) {
  const size_t n = input.num_rows();
  std::vector<ColumnPtr> key_cols;
  for (const SortKey& key : keys) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(key.column));
    key_cols.push_back(std::move(column));
  }

  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

  auto compare_at = [&](const Column& column, uint32_t a,
                        uint32_t b) -> int {
    if (column.type() == DataType::kString) {
      const auto& str = static_cast<const StringColumn&>(column);
      // Order-preserving dictionaries allow comparing codes directly.
      if (str.order_preserving()) {
        const int32_t ca = str.code(a), cb = str.code(b);
        return ca < cb ? -1 : (ca > cb ? 1 : 0);
      }
      const auto va = str.value(a), vb = str.value(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    const double va = NumericAt(column, a), vb = NumericAt(column, b);
    return va < vb ? -1 : (va > vb ? 1 : 0);
  };

  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      const int cmp = compare_at(*key_cols[k], a, b);
      if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });

  return GatherRows(input, order, name);
}

Result<TablePtr> Project(const Table& input,
                         const std::vector<std::string>& keep_columns,
                         const std::vector<ArithmeticExpr>& expressions,
                         const std::string& name) {
  auto output = std::make_shared<Table>(name);
  for (const std::string& col_name : keep_columns) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(col_name));
    HETDB_RETURN_NOT_OK(output->AddColumn(column));  // zero-copy alias
  }
  const size_t n = input.num_rows();
  for (const ArithmeticExpr& expr : expressions) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr left, input.GetColumn(expr.left_column));
    ColumnPtr right;
    if (!expr.right_column.empty()) {
      HETDB_ASSIGN_OR_RETURN(right, input.GetColumn(expr.right_column));
    }
    const bool integer_result =
        expr.op != ArithmeticExpr::Op::kDiv &&
        left->type() != DataType::kDouble &&
        (right == nullptr
             ? expr.right_constant == std::floor(expr.right_constant)
             : right->type() != DataType::kDouble);
    auto apply = [&](double a, double b) -> double {
      switch (expr.op) {
        case ArithmeticExpr::Op::kAdd:
          return a + b;
        case ArithmeticExpr::Op::kSub:
          return a - b;
        case ArithmeticExpr::Op::kMul:
          return a * b;
        case ArithmeticExpr::Op::kDiv:
          return b == 0 ? 0 : a / b;
        case ArithmeticExpr::Op::kRsub:
          return b - a;
      }
      return 0;
    };
    if (integer_result) {
      std::vector<int64_t> values(n);
      for (size_t i = 0; i < n; ++i) {
        const double b =
            right != nullptr ? NumericAt(*right, i) : expr.right_constant;
        values[i] = static_cast<int64_t>(apply(NumericAt(*left, i), b));
      }
      HETDB_RETURN_NOT_OK(output->AddColumn(
          std::make_shared<Int64Column>(expr.output_name, std::move(values))));
    } else {
      std::vector<double> values(n);
      for (size_t i = 0; i < n; ++i) {
        const double b =
            right != nullptr ? NumericAt(*right, i) : expr.right_constant;
        values[i] = apply(NumericAt(*left, i), b);
      }
      HETDB_RETURN_NOT_OK(output->AddColumn(std::make_shared<DoubleColumn>(
          expr.output_name, std::move(values))));
    }
  }
  return output;
}

Result<TablePtr> Limit(const Table& input, size_t n, const std::string& name) {
  const size_t take = std::min(n, input.num_rows());
  std::vector<uint32_t> rows(take);
  for (size_t i = 0; i < take; ++i) rows[i] = static_cast<uint32_t>(i);
  return GatherRows(input, rows, name);
}

size_t FilterInputBytes(const Table& input, const ConjunctiveFilter& filter) {
  size_t bytes = 0;
  for (const Disjunction& disjunction : filter.conjuncts) {
    for (const Predicate& atom : disjunction.atoms) {
      Result<ColumnPtr> column = input.GetColumn(atom.column);
      if (column.ok()) bytes += column.value()->data_bytes();
    }
  }
  return bytes;
}

}  // namespace hetdb
