file(REMOVE_RECURSE
  "CMakeFiles/hetdb_engine.dir/chopping_executor.cc.o"
  "CMakeFiles/hetdb_engine.dir/chopping_executor.cc.o.d"
  "CMakeFiles/hetdb_engine.dir/operator_executor.cc.o"
  "CMakeFiles/hetdb_engine.dir/operator_executor.cc.o.d"
  "CMakeFiles/hetdb_engine.dir/query_executor.cc.o"
  "CMakeFiles/hetdb_engine.dir/query_executor.cc.o.d"
  "libhetdb_engine.a"
  "libhetdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
