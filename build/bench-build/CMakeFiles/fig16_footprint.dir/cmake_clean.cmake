file(REMOVE_RECURSE
  "../bench/fig16_footprint"
  "../bench/fig16_footprint.pdb"
  "CMakeFiles/fig16_footprint.dir/fig16_footprint.cpp.o"
  "CMakeFiles/fig16_footprint.dir/fig16_footprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
