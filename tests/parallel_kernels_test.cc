// Parity tests for the morsel-parallel kernel backend: every kernel must
// produce byte-identical output to the scalar reference backend, across
// worker counts and adversarial inputs (DESIGN.md §5 invariant — placement
// and now parallelism substitute *timing*, never results). Also covers the
// morsel scheduler (ParallelFor, DopBudget) directly. The whole binary runs
// under the TSan CI job, so these tests double as race detection for the
// task arena and the parallel kernels.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "operators/kernels.h"
#include "telemetry/telemetry.h"

namespace hetdb {
namespace {

// ---------------------------------------------------------------------------
// Backend scope guard
// ---------------------------------------------------------------------------

/// Applies a kernel backend + DoP configuration for one scope. The DopBudget
/// capacity is raised to the requested thread count so the arena really runs
/// that many workers even on a single-core CI machine.
class BackendScope {
 public:
  BackendScope(KernelBackend backend, int threads, size_t morsel_rows)
      : saved_(GlobalKernelConfig()),
        saved_capacity_(DopBudget::Global().capacity()) {
    GlobalKernelConfig().backend = backend;
    GlobalKernelConfig().max_dop = threads;
    GlobalKernelConfig().morsel_rows = morsel_rows;
    DopBudget::Global().SetCapacity(threads);
  }
  ~BackendScope() {
    GlobalKernelConfig() = saved_;
    DopBudget::Global().SetCapacity(saved_capacity_);
  }

 private:
  KernelConfig saved_;
  int saved_capacity_;
};

std::vector<int> ThreadCounts() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return {1, 2, 7, hw > 0 ? hw : 4};
}

// ---------------------------------------------------------------------------
// Byte-identical table comparison
// ---------------------------------------------------------------------------

/// Compares raw value storage: numeric vectors via memcmp (doubles compared
/// bitwise, so +0.0 vs -0.0 or NaN payload differences fail), string columns
/// via codes plus dictionary.
template <typename T>
void ExpectBitIdenticalValues(const std::vector<T>& a, const std::vector<T>& b,
                              const std::string& col) {
  ASSERT_EQ(a.size(), b.size()) << "row count of column " << col;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << "values of column " << col;
  }
}

void ExpectBitIdenticalTables(const Table& a, const Table& b) {
  ASSERT_EQ(a.columns().size(), b.columns().size());
  for (size_t c = 0; c < a.columns().size(); ++c) {
    const Column& ca = *a.columns()[c];
    const Column& cb = *b.columns()[c];
    EXPECT_EQ(ca.name(), cb.name());
    ASSERT_EQ(ca.type(), cb.type()) << "type of column " << ca.name();
    switch (ca.type()) {
      case DataType::kInt32:
        ExpectBitIdenticalValues(static_cast<const Int32Column&>(ca).values(),
                                 static_cast<const Int32Column&>(cb).values(),
                                 ca.name());
        break;
      case DataType::kInt64:
        ExpectBitIdenticalValues(static_cast<const Int64Column&>(ca).values(),
                                 static_cast<const Int64Column&>(cb).values(),
                                 ca.name());
        break;
      case DataType::kDouble:
        ExpectBitIdenticalValues(static_cast<const DoubleColumn&>(ca).values(),
                                 static_cast<const DoubleColumn&>(cb).values(),
                                 ca.name());
        break;
      case DataType::kString: {
        const auto& sa = static_cast<const StringColumn&>(ca);
        const auto& sb = static_cast<const StringColumn&>(cb);
        EXPECT_EQ(sa.dictionary(), sb.dictionary())
            << "dictionary of column " << ca.name();
        ExpectBitIdenticalValues(sa.codes(), sb.codes(), ca.name());
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Test data
// ---------------------------------------------------------------------------

constexpr size_t kTestMorsel = 256;  // small, so even 10k rows use many morsels

TablePtr MakeFactTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> key, quantity, discount;
  std::vector<int64_t> revenue;
  std::vector<double> price;
  key.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    key.push_back(static_cast<int32_t>(rng.Uniform(0, 199)));
    quantity.push_back(static_cast<int32_t>(rng.Uniform(1, 50)));
    discount.push_back(static_cast<int32_t>(rng.Uniform(0, 10)));
    revenue.push_back(rng.Uniform(0, 1'000'000));
    price.push_back(rng.NextDouble() * 1000.0 - 500.0);
  }
  auto table = std::make_shared<Table>("fact");
  EXPECT_TRUE(
      table->AddColumn(std::make_shared<Int32Column>("key", std::move(key)))
          .ok());
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<Int32Column>(
                      "quantity", std::move(quantity)))
                  .ok());
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<Int32Column>(
                      "discount", std::move(discount)))
                  .ok());
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<Int64Column>(
                      "revenue", std::move(revenue)))
                  .ok());
  EXPECT_TRUE(
      table->AddColumn(std::make_shared<DoubleColumn>("price", std::move(price)))
          .ok());
  auto city = StringColumn::FromDictionary(
      "city", {"amsterdam", "berlin", "cairo", "delhi", "eugene"});
  for (size_t i = 0; i < rows; ++i) {
    city->AppendCode(static_cast<int32_t>(rng.Uniform(0, 4)));
  }
  EXPECT_TRUE(table->AddColumn(std::move(city)).ok());
  return table;
}

TablePtr MakeDimTable(size_t rows, uint64_t seed, bool all_duplicate_keys) {
  Rng rng(seed);
  std::vector<int32_t> key;
  std::vector<int64_t> weight;
  for (size_t i = 0; i < rows; ++i) {
    key.push_back(all_duplicate_keys ? 7 : static_cast<int32_t>(i));
    weight.push_back(rng.Uniform(-100, 100));
  }
  auto table = std::make_shared<Table>("dim");
  EXPECT_TRUE(
      table->AddColumn(std::make_shared<Int32Column>("d_key", std::move(key)))
          .ok());
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<Int64Column>(
                      "d_weight", std::move(weight)))
                  .ok());
  return table;
}

// Runs `body` under the scalar backend, then under the parallel backend for
// every thread count, comparing results.
template <typename Fn>
void ExpectBackendParity(Fn body) {
  TablePtr scalar_result;
  {
    BackendScope scope(KernelBackend::kScalar, 1, kTestMorsel);
    scalar_result = body();
  }
  ASSERT_NE(scalar_result, nullptr);
  for (int threads : ThreadCounts()) {
    BackendScope scope(KernelBackend::kMorselParallel, threads, kTestMorsel);
    TablePtr parallel_result = body();
    ASSERT_NE(parallel_result, nullptr) << "threads=" << threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectBitIdenticalTables(*scalar_result, *parallel_result);
  }
}

// ---------------------------------------------------------------------------
// Filter parity
// ---------------------------------------------------------------------------

TablePtr RunFilter(const Table& input, const ConjunctiveFilter& filter) {
  Result<std::vector<uint32_t>> rows = EvaluateFilter(input, filter);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  if (!rows.ok()) return nullptr;
  Result<TablePtr> out = GatherRows(input, rows.value(), "filtered");
  EXPECT_TRUE(out.ok());
  return out.ok() ? out.value() : nullptr;
}

TEST(ParallelFilterParity, CnfWithDisjunctionsAndStrings) {
  TablePtr fact = MakeFactTable(10'000, 1);
  ConjunctiveFilter filter;
  filter.conjuncts.push_back(
      Disjunction{Predicate::Between("discount", int64_t{2}, int64_t{6}),
                  Predicate::Eq("quantity", int64_t{10})});
  filter.conjuncts.push_back(
      Disjunction{Predicate::Lt("city", "cairo"),
                  Predicate::Ge("city", "eugene")});
  filter.conjuncts.push_back(Disjunction(Predicate::Gt("price", -250.0)));
  ExpectBackendParity([&] { return RunFilter(*fact, filter); });
}

TEST(ParallelFilterParity, EmptyAllMatchAndEmptyInput) {
  TablePtr fact = MakeFactTable(5'000, 2);
  ExpectBackendParity([&] {  // no row qualifies
    return RunFilter(*fact,
                     ConjunctiveFilter::And({Predicate::Gt("quantity",
                                                           int64_t{100})}));
  });
  ExpectBackendParity([&] {  // every row qualifies
    return RunFilter(*fact,
                     ConjunctiveFilter::And({Predicate::Ge("quantity",
                                                           int64_t{0})}));
  });
  ExpectBackendParity([&] {  // empty filter keeps everything
    return RunFilter(*fact, ConjunctiveFilter{});
  });
  TablePtr empty = MakeFactTable(0, 3);
  ExpectBackendParity([&] {
    return RunFilter(*empty, ConjunctiveFilter::And(
                                 {Predicate::Eq("quantity", int64_t{1})}));
  });
}

TEST(ParallelFilterParity, ErrorsMatchScalarBackend) {
  TablePtr fact = MakeFactTable(100, 4);
  const ConjunctiveFilter bad_column =
      ConjunctiveFilter::And({Predicate::Eq("missing", int64_t{1})});
  const ConjunctiveFilter bad_constant =
      ConjunctiveFilter::And({Predicate::Eq("city", int64_t{1})});
  for (const ConjunctiveFilter* filter : {&bad_column, &bad_constant}) {
    Status scalar_status, parallel_status;
    {
      BackendScope scope(KernelBackend::kScalar, 1, kTestMorsel);
      scalar_status = EvaluateFilter(*fact, *filter).status();
    }
    {
      BackendScope scope(KernelBackend::kMorselParallel, 4, kTestMorsel);
      parallel_status = EvaluateFilter(*fact, *filter).status();
    }
    EXPECT_FALSE(scalar_status.ok());
    EXPECT_EQ(scalar_status.code(), parallel_status.code());
    EXPECT_EQ(scalar_status.ToString(), parallel_status.ToString());
  }
}

// ---------------------------------------------------------------------------
// Hash join parity
// ---------------------------------------------------------------------------

TablePtr RunJoin(const Table& build, const Table& probe) {
  JoinOutputSpec spec;
  spec.build_columns = {"d_weight", "d_key"};
  spec.probe_columns = {"revenue", "key"};
  spec.probe_aliases = {"revenue", "fact_key"};
  Result<TablePtr> out =
      HashJoin(build, "d_key", probe, "key", spec, "joined");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? out.value() : nullptr;
}

TEST(ParallelJoinParity, PkFkJoin) {
  TablePtr dim = MakeDimTable(200, 10, /*all_duplicate_keys=*/false);
  TablePtr fact = MakeFactTable(10'000, 11);
  ExpectBackendParity([&] { return RunJoin(*dim, *fact); });
}

TEST(ParallelJoinParity, AllDuplicateBuildKeys) {
  // Every build row has key 7: each probe hit fans out to all build rows,
  // in ascending build-row order.
  TablePtr dim = MakeDimTable(50, 12, /*all_duplicate_keys=*/true);
  TablePtr fact = MakeFactTable(2'000, 13);
  ExpectBackendParity([&] { return RunJoin(*dim, *fact); });
}

TEST(ParallelJoinParity, EmptySides) {
  TablePtr empty_dim = MakeDimTable(0, 14, false);
  TablePtr empty_fact = MakeFactTable(0, 15);
  TablePtr dim = MakeDimTable(100, 16, false);
  TablePtr fact = MakeFactTable(1'000, 17);
  ExpectBackendParity([&] { return RunJoin(*empty_dim, *fact); });
  ExpectBackendParity([&] { return RunJoin(*dim, *empty_fact); });
}

TEST(ParallelJoinParity, Int64KeysWithNegativeValues) {
  // int64 build keys probed by an int32 column: sign extension must agree.
  std::vector<int64_t> bkeys;
  for (int i = -500; i < 500; ++i) bkeys.push_back(i);
  auto build = std::make_shared<Table>("b");
  ASSERT_TRUE(
      build->AddColumn(std::make_shared<Int64Column>("bk", std::move(bkeys)))
          .ok());
  Rng rng(18);
  std::vector<int32_t> pkeys;
  std::vector<int64_t> payload;
  for (size_t i = 0; i < 5'000; ++i) {
    pkeys.push_back(static_cast<int32_t>(rng.Uniform(-700, 700)));
    payload.push_back(rng.Uniform(0, 1000));
  }
  auto probe = std::make_shared<Table>("p");
  ASSERT_TRUE(
      probe->AddColumn(std::make_shared<Int32Column>("pk", std::move(pkeys)))
          .ok());
  ASSERT_TRUE(
      probe->AddColumn(std::make_shared<Int64Column>("v", std::move(payload)))
          .ok());
  JoinOutputSpec spec;
  spec.build_columns = {"bk"};
  spec.probe_columns = {"v", "pk"};
  ExpectBackendParity([&]() -> TablePtr {
    Result<TablePtr> out = HashJoin(*build, "bk", *probe, "pk", spec, "j");
    EXPECT_TRUE(out.ok());
    return out.ok() ? out.value() : nullptr;
  });
}

TEST(ParallelJoinParity, SparseKeysUsePartitionedHashPath) {
  // Key domain spread over the full int64 range (with injected duplicates)
  // defeats the dense direct-address fast path, so this exercises the
  // partitioned hash join: radix partitioning, linear probing, chains.
  Rng rng(19);
  std::vector<int64_t> bkeys;
  for (size_t i = 0; i < 3'000; ++i) {
    bkeys.push_back(static_cast<int64_t>(rng.Next()));
  }
  for (size_t i = 0; i < 200; ++i) {  // duplicate chains in a sparse domain
    bkeys.push_back(bkeys[static_cast<size_t>(rng.Uniform(0, 2'999))]);
  }
  std::vector<int64_t> pkeys;
  std::vector<int64_t> payload;
  for (size_t i = 0; i < 20'000; ++i) {
    // Half the probes hit a build key, half miss.
    pkeys.push_back(rng.Uniform(0, 1) == 0
                        ? bkeys[static_cast<size_t>(
                              rng.Uniform(0, static_cast<int64_t>(
                                                 bkeys.size() - 1)))]
                        : static_cast<int64_t>(rng.Next()));
    payload.push_back(rng.Uniform(0, 1000));
  }
  auto build = std::make_shared<Table>("b");
  ASSERT_TRUE(
      build->AddColumn(std::make_shared<Int64Column>("bk", std::move(bkeys)))
          .ok());
  auto probe = std::make_shared<Table>("p");
  ASSERT_TRUE(
      probe->AddColumn(std::make_shared<Int64Column>("pk", std::move(pkeys)))
          .ok());
  ASSERT_TRUE(
      probe->AddColumn(std::make_shared<Int64Column>("v", std::move(payload)))
          .ok());
  JoinOutputSpec spec;
  spec.build_columns = {"bk"};
  spec.probe_columns = {"v"};
  ExpectBackendParity([&]() -> TablePtr {
    Result<TablePtr> out = HashJoin(*build, "bk", *probe, "pk", spec, "j");
    EXPECT_TRUE(out.ok());
    return out.ok() ? out.value() : nullptr;
  });
}

// ---------------------------------------------------------------------------
// Aggregate parity
// ---------------------------------------------------------------------------

TablePtr RunAggregate(const Table& input,
                      const std::vector<std::string>& group_by,
                      const std::vector<AggregateSpec>& aggregates) {
  Result<TablePtr> out = Aggregate(input, group_by, aggregates, "agg");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? out.value() : nullptr;
}

std::vector<AggregateSpec> AllAggregates() {
  return {
      {AggregateFn::kSum, "revenue", "sum_rev"},
      {AggregateFn::kSum, "price", "sum_price"},   // double: FP order matters
      {AggregateFn::kMin, "price", "min_price"},
      {AggregateFn::kMax, "revenue", "max_rev"},
      {AggregateFn::kAvg, "quantity", "avg_qty"},
      {AggregateFn::kCount, "", "rows"},           // COUNT(*)
  };
}

TEST(ParallelAggregateParity, GroupByStringColumn) {
  TablePtr fact = MakeFactTable(10'000, 20);
  ExpectBackendParity(
      [&] { return RunAggregate(*fact, {"city"}, AllAggregates()); });
}

TEST(ParallelAggregateParity, MultiColumnPackedKey) {
  TablePtr fact = MakeFactTable(10'000, 21);
  ExpectBackendParity([&] {
    return RunAggregate(*fact, {"city", "discount", "key"}, AllAggregates());
  });
}

TEST(ParallelAggregateParity, SingleGroupAndNoGroupBy) {
  TablePtr fact = MakeFactTable(5'000, 22);
  // All rows in one group via a constant column.
  std::vector<int32_t> ones(fact->num_rows(), 1);
  ASSERT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("one", std::move(ones)))
          .ok());
  ExpectBackendParity(
      [&] { return RunAggregate(*fact, {"one"}, AllAggregates()); });
  ExpectBackendParity(
      [&] { return RunAggregate(*fact, {}, AllAggregates()); });
}

TEST(ParallelAggregateParity, AllDistinctGroups) {
  // Every row is its own group: stresses local tables, the merge, and the
  // first-seen output ordering.
  const size_t rows = 8'000;
  std::vector<int64_t> id(rows);
  for (size_t i = 0; i < rows; ++i) {
    id[i] = static_cast<int64_t>((i * 2'654'435'761u) % 1'000'000'007u);
  }
  auto table = std::make_shared<Table>("t");
  ASSERT_TRUE(
      table->AddColumn(std::make_shared<Int64Column>("id", std::move(id)))
          .ok());
  Rng rng(23);
  std::vector<double> v(rows);
  for (double& x : v) x = rng.NextDouble();
  ASSERT_TRUE(table->AddColumn(std::make_shared<DoubleColumn>("v", std::move(v)))
                  .ok());
  ExpectBackendParity([&] {
    return RunAggregate(*table, {"id"},
                        {{AggregateFn::kSum, "v", "sv"},
                         {AggregateFn::kCount, "", "c"}});
  });
}

TEST(ParallelAggregateParity, WideKeyFallsBackToScalar) {
  // Two full-range int64 key columns cannot pack into 64 bits; the parallel
  // backend must detect this and fall back (results identical by definition,
  // but the path must not crash or truncate keys).
  const size_t rows = 4'000;
  Rng rng(24);
  std::vector<int64_t> a(rows), b(rows), v(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = static_cast<int64_t>(rng.Next());  // spans ~2^64
    b[i] = static_cast<int64_t>(rng.Next());
    v[i] = rng.Uniform(0, 100);
    if (i % 7 == 0 && i > 0) {  // inject duplicates so groups aren't all size 1
      a[i] = a[i - 1];
      b[i] = b[i - 1];
    }
  }
  auto table = std::make_shared<Table>("t");
  ASSERT_TRUE(table->AddColumn(std::make_shared<Int64Column>("a", std::move(a)))
                  .ok());
  ASSERT_TRUE(table->AddColumn(std::make_shared<Int64Column>("b", std::move(b)))
                  .ok());
  ASSERT_TRUE(table->AddColumn(std::make_shared<Int64Column>("v", std::move(v)))
                  .ok());
  ExpectBackendParity([&] {
    return RunAggregate(*table, {"a", "b"},
                        {{AggregateFn::kSum, "v", "sv"},
                         {AggregateFn::kMin, "v", "mv"}});
  });
}

TEST(ParallelAggregateParity, EmptyInput) {
  TablePtr empty = MakeFactTable(0, 25);
  ExpectBackendParity(
      [&] { return RunAggregate(*empty, {"city"}, AllAggregates()); });
}

// ---------------------------------------------------------------------------
// Morsel scheduler
// ---------------------------------------------------------------------------

TEST(ParallelForTest, EveryMorselExactlyOnceAndAligned) {
  BackendScope scope(KernelBackend::kMorselParallel, 7, 64);
  const size_t total = 64 * 37 + 13;  // ragged tail
  std::vector<std::atomic<int>> seen(total);
  for (auto& s : seen) s.store(0);
  const int workers = ParallelFor(total, 64, [&](size_t begin, size_t end,
                                                 int worker) {
    EXPECT_EQ(begin % 64, 0u);
    EXPECT_LE(end - begin, 64u);
    EXPECT_GE(worker, 0);
    for (size_t i = begin; i < end; ++i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_GE(workers, 1);
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "row " << i;
  }
}

TEST(ParallelForTest, NestedCallsRunSerial) {
  BackendScope scope(KernelBackend::kMorselParallel, 8, 16);
  std::mutex mu;
  std::set<std::thread::id> inner_threads;
  ParallelFor(256, 16, [&](size_t, size_t, int) {
    const int inner_workers =
        ParallelFor(64, 8, [&](size_t, size_t, int worker) {
          EXPECT_EQ(worker, 0);  // nested loops never fan out
          std::lock_guard<std::mutex> lock(mu);
          inner_threads.insert(std::this_thread::get_id());
        });
    EXPECT_EQ(inner_workers, 1);
  });
  EXPECT_FALSE(inner_threads.empty());
}

TEST(ParallelForTest, ZeroAndTinyInputs) {
  BackendScope scope(KernelBackend::kMorselParallel, 8, 1024);
  int calls = 0;
  EXPECT_EQ(ParallelFor(0, 1024, [&](size_t, size_t, int) { ++calls; }), 1);
  EXPECT_EQ(calls, 0);
  ParallelFor(3, 1024, [&](size_t begin, size_t end, int) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(DopBudgetTest, AcquireReleaseAndCapacity) {
  DopBudget budget(4);
  EXPECT_EQ(budget.capacity(), 4);
  EXPECT_EQ(budget.TryAcquire(3), 3);
  EXPECT_EQ(budget.available(), 1);
  EXPECT_EQ(budget.TryAcquire(5), 1);  // partial grant
  EXPECT_EQ(budget.TryAcquire(1), 0);  // exhausted: non-blocking refusal
  budget.Release(4);
  EXPECT_EQ(budget.available(), 4);

  budget.SetCapacity(2);  // shrink with no tokens outstanding
  EXPECT_EQ(budget.capacity(), 2);
  EXPECT_EQ(budget.available(), 2);

  {
    DopBudget::Token token(&budget);
    EXPECT_TRUE(token.held());
    EXPECT_EQ(budget.available(), 1);
    DopBudget::Token moved(std::move(token));
    EXPECT_TRUE(moved.held());
    EXPECT_EQ(budget.available(), 1);
  }
  EXPECT_EQ(budget.available(), 2);
}

TEST(KernelMetricsTest, ParallelRunsAreCounted) {
  MetricRegistry& registry = GlobalKernelMetrics();
  Counter& invocations = registry.GetCounter("kernel.filter.invocations");
  Counter& morsels = registry.GetCounter("kernel.filter.morsels");
  const int64_t invocations_before = invocations.value();
  const int64_t morsels_before = morsels.value();

  BackendScope scope(KernelBackend::kMorselParallel, 2, 128);
  TablePtr fact = MakeFactTable(2'000, 30);
  ASSERT_TRUE(
      EvaluateFilter(*fact, ConjunctiveFilter::And(
                                {Predicate::Ge("quantity", int64_t{25})}))
          .ok());
  EXPECT_EQ(invocations.value(), invocations_before + 1);
  // 2000 rows at 128-row morsels = 16 morsels in the evaluation loop.
  EXPECT_GE(morsels.value(), morsels_before + 16);
}

}  // namespace
}  // namespace hetdb
