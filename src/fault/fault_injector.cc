#include "fault/fault_injector.h"

namespace hetdb {

const char* FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kDeviceAlloc:
      return "alloc";
    case FaultSite::kKernel:
      return "kernel";
    case FaultSite::kTransfer:
      return "transfer";
  }
  return "unknown";
}

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kHeapExhausted:
      return "heap_exhausted";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kDeviceLost:
      return "device_lost";
    case FaultKind::kLatencySpike:
      return "latency_spike";
  }
  return "unknown";
}

Status FaultDecision::ToStatus(const std::string& context) const {
  switch (kind) {
    case FaultKind::kHeapExhausted:
      return Status::ResourceExhausted("injected heap fault: " + context);
    case FaultKind::kTransient:
      return Status::Unavailable("injected transient device fault: " + context);
    case FaultKind::kDeviceLost:
      return Status::DeviceLost("injected device-offline fault: " + context);
    case FaultKind::kNone:
    case FaultKind::kLatencySpike:
      return Status::OK();
  }
  return Status::OK();
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_.Seed(seed);
}

void FaultInjector::SetSchedule(FaultSite site, const FaultSchedule& schedule) {
  std::lock_guard<std::mutex> lock(mutex_);
  schedules_[static_cast<int>(site)] = schedule;
  burst_remaining_[static_cast<int>(site)] = 0;
  faults_by_site_[static_cast<int>(site)] = 0;
  RefreshEnabled();
}

void FaultInjector::SetOfflineSchedule(const OfflineSchedule& schedule) {
  std::lock_guard<std::mutex> lock(mutex_);
  offline_schedule_ = schedule;
  RefreshEnabled();
}

void FaultInjector::ForceOffline(int duration_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  offline_remaining_ = duration_events;
  if (duration_events > 0) {
    NoteOfflineEpisodeLocked("forced", duration_events);
  }
  RefreshEnabled();
}

void FaultInjector::ClearAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int site = 0; site < kNumFaultSites; ++site) {
    schedules_[site] = FaultSchedule();
    burst_remaining_[site] = 0;
    faults_by_site_[site] = 0;
  }
  offline_schedule_ = OfflineSchedule();
  offline_remaining_ = 0;
  RefreshEnabled();
}

void FaultInjector::RefreshEnabled() {
  bool armed = offline_remaining_ > 0 ||
               (offline_schedule_.start_probability > 0 &&
                offline_schedule_.duration_events > 0);
  for (int site = 0; site < kNumFaultSites && !armed; ++site) {
    armed = schedules_[site].kind != FaultKind::kNone &&
            schedules_[site].probability > 0;
  }
  enabled_.store(armed, std::memory_order_relaxed);
}

void FaultInjector::CountFault(FaultSite site, FaultKind kind) {
  counts_[static_cast<int>(site)][static_cast<int>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  total_faults_.fetch_add(1, std::memory_order_relaxed);
  if (registry_ != nullptr) {
    registry_
        ->GetCounter(std::string("fault.injected.") + FaultSiteToString(site) +
                     "." + FaultKindToString(kind))
        .Increment();
  }
}

FaultDecision FaultInjector::Decide(FaultSite site, size_t bytes) {
  if (!enabled()) return FaultDecision();
  std::lock_guard<std::mutex> lock(mutex_);

  // Offline episodes dominate every per-site schedule: a lost device fails
  // allocations, kernels, and transfers alike.
  if (offline_remaining_ > 0) {
    --offline_remaining_;
    if (offline_remaining_ == 0) RefreshEnabled();
    CountFault(site, FaultKind::kDeviceLost);
    return FaultDecision{FaultKind::kDeviceLost, 1.0};
  }
  if (offline_schedule_.start_probability > 0 &&
      offline_schedule_.duration_events > 0 &&
      rng_.NextBool(offline_schedule_.start_probability)) {
    offline_remaining_ = offline_schedule_.duration_events - 1;
    NoteOfflineEpisodeLocked("probabilistic",
                             offline_schedule_.duration_events);
    CountFault(site, FaultKind::kDeviceLost);
    return FaultDecision{FaultKind::kDeviceLost, 1.0};
  }

  const int index = static_cast<int>(site);
  const FaultSchedule& schedule = schedules_[index];
  if (schedule.kind == FaultKind::kNone) return FaultDecision();
  if (bytes < schedule.min_bytes) return FaultDecision();
  if (schedule.max_faults > 0 &&
      faults_by_site_[index] >= schedule.max_faults) {
    return FaultDecision();
  }

  bool fires = false;
  if (burst_remaining_[index] > 0) {
    --burst_remaining_[index];
    fires = true;
  } else if (rng_.NextBool(schedule.probability)) {
    burst_remaining_[index] = schedule.burst_length > 1
                                  ? schedule.burst_length - 1
                                  : 0;
    fires = true;
  }
  if (!fires) return FaultDecision();

  ++faults_by_site_[index];
  CountFault(site, schedule.kind);
  return FaultDecision{schedule.kind, schedule.latency_factor};
}

uint64_t FaultInjector::faults_injected(FaultSite site, FaultKind kind) const {
  return counts_[static_cast<int>(site)][static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}

bool FaultInjector::offline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offline_remaining_ > 0;
}

void FaultInjector::BindMetrics(MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_ = registry;
}

void FaultInjector::BindFlightRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  recorder_ = recorder;
}

void FaultInjector::NoteOfflineEpisodeLocked(const char* origin,
                                             int duration_events) {
  if (recorder_ == nullptr) return;
  // An offline episode is the chaos escalation worth a post-mortem: the
  // whole device disappears for `duration_events` consultations.
  recorder_->RecordFault(
      "device_offline",
      {{"origin", origin}, {"duration_events", std::to_string(duration_events)}});
  recorder_->AutoDump("device_offline");
}

void FaultInjector::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int site = 0; site < kNumFaultSites; ++site) {
    faults_by_site_[site] = 0;
    for (int kind = 0; kind < kNumKinds; ++kind) {
      counts_[site][kind].store(0, std::memory_order_relaxed);
    }
  }
  total_faults_.store(0, std::memory_order_relaxed);
}

}  // namespace hetdb
