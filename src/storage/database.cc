#include "storage/database.h"

namespace hetdb {

Status Database::AddTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (tables_.count(table->name()) > 0) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already exists");
  }
  tables_[table->name()] = std::move(table);
  return Status::OK();
}

Result<TablePtr> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second;
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<ColumnPtr> Database::GetColumnByQualifiedName(
    const std::string& qualified) const {
  const size_t dot = qualified.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument("expected '<table>.<column>', got '" +
                                   qualified + "'");
  }
  HETDB_ASSIGN_OR_RETURN(TablePtr table, GetTable(qualified.substr(0, dot)));
  return table->GetColumn(qualified.substr(dot + 1));
}

std::vector<TablePtr> Database::tables() const {
  std::vector<TablePtr> result;
  result.reserve(tables_.size());
  for (const auto& [name, table] : tables_) result.push_back(table);
  return result;
}

size_t Database::TotalBytes() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->data_bytes();
  return total;
}

void Database::ResetAccessCounters() {
  for (const auto& [name, table] : tables_) {
    for (const auto& column : table->columns()) column->ResetAccessCount();
  }
}

}  // namespace hetdb
