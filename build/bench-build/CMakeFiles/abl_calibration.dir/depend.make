# Empty dependencies file for abl_calibration.
# This may be replaced when dependencies are built.
