// Interactive SQL shell over an SSB database — a client of the serving
// front-end: every statement goes through a Session into the admission
// controller (fair queueing, concurrency governor, SLO shedding) before the
// Data-Driven Chopping strategy executes it on the simulated co-processor.
//
//   ./build/examples/sql_shell            # interactive
//   echo "SELECT ..." | ./build/examples/sql_shell
//
// Meta commands: \tables, \cache, \devices, \server, \deadline MS,
//                \trace SELECT ..., \flight [path], \quit
// Statements: SELECT ..., EXPLAIN SELECT ..., EXPLAIN ANALYZE SELECT ...

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stopwatch.h"
#include "engine/pipeline_builder.h"
#include "server/server.h"
#include "sql/explain.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "ssb/ssb_generator.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_recorder.h"

using namespace hetdb;

namespace {

void PrintValue(const Column& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt32:
      std::printf("%-18d", static_cast<const Int32Column&>(column).value(row));
      break;
    case DataType::kInt64:
      std::printf("%-18lld",
                  static_cast<long long>(
                      static_cast<const Int64Column&>(column).value(row)));
      break;
    case DataType::kDouble:
      std::printf("%-18.2f", static_cast<const DoubleColumn&>(column).value(row));
      break;
    case DataType::kString:
      std::printf("%-18s",
                  std::string(static_cast<const StringColumn&>(column).value(row))
                      .c_str());
      break;
  }
}

void PrintTable(const Table& table, size_t max_rows = 25) {
  for (const ColumnPtr& column : table.columns()) {
    std::printf("%-18s", column->name().c_str());
  }
  std::printf("\n");
  const size_t rows = std::min(max_rows, table.num_rows());
  for (size_t row = 0; row < rows; ++row) {
    for (const ColumnPtr& column : table.columns()) PrintValue(*column, row);
    std::printf("\n");
  }
  if (rows < table.num_rows()) {
    std::printf("... (%zu rows total)\n", table.num_rows());
  }
}

const std::string* FindArg(const TraceEvent& event, const char* key) {
  for (const auto& [name, value] : event.args) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// EXPLAIN ANALYZE-style rendering of one query's operator spans: the plan
/// tree (reconstructed from node/parent ids) with the processor that ran
/// each operator and its wall duration, plus a transfer summary.
void PrintSpanTree(const std::vector<TraceEvent>& events) {
  // The operator spans of the most recent query in the snapshot.
  uint64_t query_id = 0;
  for (const TraceEvent& event : events) {
    if (std::string(event.category) == "operator") {
      query_id = std::max(query_id, event.query_id);
    }
  }
  std::vector<const TraceEvent*> operators;
  std::map<uint64_t, std::vector<const TraceEvent*>> children;
  for (const TraceEvent& event : events) {
    if (std::string(event.category) != "operator" ||
        event.query_id != query_id) {
      continue;
    }
    operators.push_back(&event);
    if (event.parent_id != 0) children[event.parent_id].push_back(&event);
  }
  if (operators.empty()) {
    std::printf("(no operator spans recorded)\n");
    return;
  }

  struct Printer {
    const std::map<uint64_t, std::vector<const TraceEvent*>>& children;
    void Print(const TraceEvent& event, int depth) const {
      const std::string* processor = FindArg(event, "processor");
      const std::string* retry = FindArg(event, "cpu_retry");
      std::printf("  %*s%-*s %-4s %8.2f ms%s\n", depth * 2, "",
                  std::max(2, 34 - depth * 2), event.name.c_str(),
                  processor != nullptr ? processor->c_str() : "?",
                  static_cast<double>(event.dur_micros) / 1000.0,
                  retry != nullptr ? "  [GPU abort -> CPU retry]" : "");
      auto it = children.find(event.node_id);
      if (it == children.end()) return;
      std::vector<const TraceEvent*> ordered = it->second;
      std::sort(ordered.begin(), ordered.end(),
                [](const TraceEvent* a, const TraceEvent* b) {
                  return a->ts_micros < b->ts_micros;
                });
      for (const TraceEvent* child : ordered) Print(*child, depth + 1);
    }
  };
  Printer printer{children};
  for (const TraceEvent* op : operators) {
    if (op->parent_id == 0) printer.Print(*op, 0);
  }

  int64_t transfer_micros = 0;
  int64_t queue_wait_micros = 0;
  int transfers = 0;
  for (const TraceEvent& event : events) {
    if (std::string(event.category) != "transfer") continue;
    ++transfers;
    transfer_micros += event.dur_micros;
    if (const std::string* wait = FindArg(event, "queue_wait_us")) {
      queue_wait_micros += std::atoll(wait->c_str());
    }
  }
  if (transfers > 0) {
    std::printf("  -- %d PCIe transfer(s), %.2f ms total (%.2f ms queuing)\n",
                transfers, static_cast<double>(transfer_micros) / 1000.0,
                static_cast<double>(queue_wait_micros) / 1000.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("HetDB SQL shell — generating SSB database (SF 1)...\n");
  SsbGeneratorOptions gen;
  gen.scale_factor = 1.0;
  DatabasePtr db = GenerateSsbDatabase(gen);

  SystemConfig config;
  config.device_memory_bytes = 16ull << 20;
  config.device_cache_bytes = 10ull << 20;
  config.time_scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--devices" && i + 1 < argc) {
      config.device_count = std::max(1, std::atoi(argv[++i]));
    }
  }
  EngineContext ctx(config, db);
  Server server(&ctx);  // Data-Driven Chopping behind admission control
  SessionPtr session = server.OpenSession("shell");

  std::printf(
      "Tables: lineorder, customer, supplier, part, date. Try:\n"
      "  SELECT d_year, sum(lo_revenue) AS revenue FROM lineorder, date\n"
      "  WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year;\n"
      "Statements: SELECT / EXPLAIN SELECT / EXPLAIN ANALYZE SELECT\n"
      "Meta: \\tables  \\cache  \\server  \\deadline MS  \\fusion on|off\n"
      "      \\trace SELECT ...  \\flight [path]  \\quit\n\n");

  // Per-statement SLO budget (\deadline); 0 = none. Queries the admission
  // controller cannot serve in time are shed before touching the device.
  long deadline_ms = 0;
  auto submit_options = [&deadline_ms] {
    SubmitOptions options;
    if (deadline_ms > 0) {
      options.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(deadline_ms);
    }
    return options;
  };

  std::string line;
  while (true) {
    std::printf("hetdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\tables") {
      for (const TablePtr& table : db->tables()) {
        std::printf("  %s (%zu rows, %zu columns)\n", table->name().c_str(),
                    table->num_rows(), table->num_columns());
      }
      continue;
    }
    if (line == "\\server") {
      AdmissionController& admission = server.admission();
      std::printf(
          "  admission: limit=%d in_flight=%d queued=%zu\n"
          "  offered=%llu shed=%llu ewma_service=%.2fms\n"
          "  detector=%s breaker=%d\n",
          admission.concurrency_limit(), admission.in_flight(),
          admission.queued(),
          static_cast<unsigned long long>(admission.offered()),
          static_cast<unsigned long long>(admission.shed_total()),
          admission.ewma_service_micros() / 1000.0,
          ThrashingDetector::StateName(ctx.detector().state()),
          static_cast<int>(ctx.breaker().state()));
      continue;
    }
    if (line.rfind("\\deadline", 0) == 0) {
      deadline_ms = std::atol(line.substr(9).c_str());
      if (deadline_ms > 0) {
        std::printf("  deadline set to %ld ms\n", deadline_ms);
      } else {
        std::printf("  deadline cleared\n");
      }
      continue;
    }
    if (line.rfind("\\fusion", 0) == 0) {
      std::string arg = line.substr(7);
      const size_t start = arg.find_first_not_of(" \t");
      arg = start == std::string::npos ? std::string() : arg.substr(start);
      if (arg == "on") {
        GlobalKernelConfig().fusion = true;
      } else if (arg == "off") {
        GlobalKernelConfig().fusion = false;
      } else if (!arg.empty()) {
        std::printf("usage: \\fusion on|off\n");
        continue;
      }
      std::printf("  pipeline fusion: %s\n",
                  GlobalKernelConfig().fusion ? "on" : "off");
      continue;
    }
    if (line == "\\cache") {
      std::printf("  device cache: %zu / %zu bytes\n", ctx.cache().used_bytes(),
                  ctx.cache().capacity_bytes());
      for (const std::string& key : ctx.cache().CachedKeys()) {
        std::printf("    %s\n", key.c_str());
      }
      continue;
    }
    if (line == "\\devices") {
      auto breaker_name = [](DeviceCircuitBreaker::State state) {
        switch (state) {
          case DeviceCircuitBreaker::State::kClosed:
            return "closed";
          case DeviceCircuitBreaker::State::kOpen:
            return "open";
          case DeviceCircuitBreaker::State::kHalfOpen:
            return "half-open";
        }
        return "?";
      };
      for (int d = 0; d < ctx.device_count(); ++d) {
        DeviceAllocator& heap = ctx.simulator().device_heap(d);
        std::printf(
            "  device %d: %s  heap %zu/%zu bytes  cache %zu/%zu bytes  "
            "breaker=%s detector=%s\n",
            d, ctx.sharding().IsLive(d) ? "live" : "LOST", heap.used(),
            heap.capacity(), ctx.cache(d).used_bytes(),
            ctx.cache(d).capacity_bytes(), breaker_name(ctx.breaker(d).state()),
            ThrashingDetector::StateName(ctx.detector(d).state()));
      }
      continue;
    }
    if (line.rfind("\\flight", 0) == 0) {
      std::string path = line.substr(7);
      const size_t start = path.find_first_not_of(" \t");
      path = start == std::string::npos ? std::string() : path.substr(start);
      const std::string jsonl =
          FlightRecorder::ToJsonl(ctx.flight_recorder().Snapshot());
      if (path.empty()) {
        std::printf("%s", jsonl.c_str());
        std::printf("  -- %lld record(s) in flight recorder\n",
                    static_cast<long long>(
                        ctx.flight_recorder().total_recorded()));
      } else if (ctx.flight_recorder().Dump(path)) {
        std::printf("flight recorder dumped to %s\n", path.c_str());
      } else {
        std::printf("error: cannot write %s\n", path.c_str());
      }
      continue;
    }
    if (line.rfind("\\trace", 0) == 0) {
      const std::string sql = line.substr(6);
      if (sql.find_first_not_of(" \t") == std::string::npos) {
        std::printf("usage: \\trace SELECT ...  (runs the statement and\n"
                    "prints the per-operator span tree with timings)\n");
        continue;
      }
      Result<PlanNodePtr> plan = PlanSql(sql, *db);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      TraceRecorder& recorder = TraceRecorder::Global();
      recorder.Clear();
      recorder.SetEnabled(true);
      Stopwatch watch;
      Result<TablePtr> result =
          session->Execute(plan.value(), submit_options());
      const double total_ms = watch.ElapsedMillis();
      recorder.SetEnabled(false);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("operator trace (%.2f ms total):\n", total_ms);
      PrintSpanTree(recorder.Snapshot());
      continue;
    }

    Result<SqlStatement> parsed = ParseStatement(line);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    Result<PlanNodePtr> plan = PlanQuery(parsed.value().select, *db);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      continue;
    }
    // Mirror the executor's fusion decision so EXPLAIN (and the stats the
    // ANALYZE path registers) describe the plan that actually runs.
    PlanNodePtr final_plan = plan.value();
    size_t fused_nodes = 0;
    if (GlobalKernelConfig().fusion) {
      final_plan = FusePipelines(final_plan);
      VisitPlanPostOrder(final_plan, [&fused_nodes](const PlanNodePtr& node) {
        if (node->op() == PlanOp::kFusedPipeline) ++fused_nodes;
      });
    }
    if (parsed.value().explain == ExplainMode::kPlan) {
      std::printf("%s", RenderPlanTree(final_plan).c_str());
      if (!GlobalKernelConfig().fusion) {
        std::printf("-- fusion: off\n");
      } else {
        std::printf("-- fusion: %zu pipeline(s) fused\n", fused_nodes);
      }
      continue;
    }
    if (parsed.value().explain == ExplainMode::kAnalyze) {
      QueryStatsPtr stats = MakeQueryStats(final_plan);
      stats->set_name(line);
      SubmitOptions options = submit_options();
      options.stats = stats;
      Result<TablePtr> result = session->Execute(final_plan, options);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("%s", stats->ToText().c_str());
      server.runner().RefreshDataPlacement();
      continue;
    }
    Stopwatch watch;
    Result<TablePtr> result = session->Execute(plan.value(), submit_options());
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintTable(*result.value());
    std::printf("(%.2f ms; refreshing data placement in background)\n",
                watch.ElapsedMillis());
    // Emulate the periodic Algorithm-1 job after each statement.
    server.runner().RefreshDataPlacement();
  }
  return 0;
}
