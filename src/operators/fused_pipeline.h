#ifndef HETDB_OPERATORS_FUSED_PIPELINE_H_
#define HETDB_OPERATORS_FUSED_PIPELINE_H_

#include <string>
#include <vector>

#include "operators/plan_node.h"

namespace hetdb {

/// A fused operator pipeline: one plan node that evaluates a chain of
/// fusable operators — selections, join probes, projections, and an optional
/// terminal aggregation — in a single morsel pass over its source child,
/// with zero intermediate materialization.
///
/// Where the operator-at-a-time plan materializes a full column table after
/// every member (gathering all columns per select, per join, per project),
/// the fused kernel keeps only row indices: compiled predicates produce a
/// keep-mask per morsel, survivors probe the pre-built per-join hash tables
/// emitting (source row, build row per level) match tuples, and the terminal
/// either gathers the output columns once or folds matches straight into
/// aggregation accumulators. On the simulated device the footprint shrinks
/// accordingly: `IntermediateDeviceBytes` charges only the join build tables
/// — no flag arrays, no per-member intermediates (DESIGN.md §11).
///
/// Results are bit-identical to the unfused chain: the same compiled
/// predicate atoms, the same (probe ascending, build ascending within key)
/// match order, the same first-seen group order and per-group ascending
/// double accumulation, and the same output typing rules — all shared with
/// the per-operator kernels via `kernels_internal.h`. If runtime binding
/// finds a shape the fused evaluator does not handle, it falls back to
/// replaying the member operators one at a time, which *is* the unfused
/// execution.
class FusedPipelineNode : public PlanNode {
 public:
  /// `children` = [source, build_0, ..., build_{J-1}]: the source feeds the
  /// bottom member, and the i-th join member (bottom-up) builds its hash
  /// table from children[1 + i]. `members` lists the fused operators
  /// bottom-up; only Select/Join/Project members plus an optional terminal
  /// Aggregate are valid (the pipeline builder guarantees this).
  FusedPipelineNode(std::vector<PlanNodePtr> children,
                    std::vector<PlanNodePtr> members);

  OpClass op_class() const override;
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  size_t IntermediateDeviceBytes(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  /// The fused member operators, bottom-up (members()[0] consumes the
  /// source). Exposed for EXPLAIN rendering and stats attribution.
  const std::vector<PlanNodePtr>& members() const { return members_; }
  size_t num_joins() const { return num_joins_; }

 private:
  /// Operator-at-a-time fallback: executes the members one by one exactly
  /// as the unfused plan would (used when runtime binding declines).
  Result<TablePtr> ReplayMembers(const std::vector<TablePtr>& inputs) const;

  std::vector<PlanNodePtr> members_;
  size_t num_joins_ = 0;
};

}  // namespace hetdb

#endif  // HETDB_OPERATORS_FUSED_PIPELINE_H_
