file(REMOVE_RECURSE
  "../bench/fig13_aborts"
  "../bench/fig13_aborts.pdb"
  "CMakeFiles/fig13_aborts.dir/fig13_aborts.cpp.o"
  "CMakeFiles/fig13_aborts.dir/fig13_aborts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
