#ifndef HETDB_SIM_PCIE_BUS_H_
#define HETDB_SIM_PCIE_BUS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "sim/sim_clock.h"

namespace hetdb {

enum class TransferDirection { kHostToDevice = 0, kDeviceToHost = 1 };

/// Models the PCIe interconnect between host and co-processor.
///
/// Transfers in the same direction serialize on a per-direction lane lock
/// (PCIe is full duplex), each taking bytes/bandwidth of modeled time while
/// holding the lane — so concurrent queries genuinely queue on the bus, which
/// is the mechanism behind the cache-thrashing degradation (Figures 2 and 6).
/// Per-direction byte and time counters feed the Figure 15/19 metrics.
class PcieBus {
 public:
  /// `bandwidth_mbps` is the asynchronous (page-locked staging, CUDA-stream)
  /// bandwidth; synchronous transfers run at `bandwidth_mbps *
  /// sync_efficiency` (Section 2.5.3 of the paper). `fault_injector`
  /// (optional) is consulted per transfer at the kTransfer site: it can slow
  /// a transfer down (latency spike), fail it transiently (Unavailable), or
  /// report the device gone (DeviceLost).
  /// `device_id` identifies which device this link connects to the host;
  /// per-query transfer attribution carries it so QueryStats can keep a
  /// per-device breakdown.
  PcieBus(double bandwidth_mbps, double sync_efficiency, SimClock* clock,
          FaultInjector* fault_injector = nullptr, int device_id = 0)
      : bandwidth_mbps_(bandwidth_mbps),
        sync_efficiency_(sync_efficiency),
        clock_(clock),
        fault_injector_(fault_injector),
        device_id_(device_id) {}

  PcieBus(const PcieBus&) = delete;
  PcieBus& operator=(const PcieBus&) = delete;

  /// Moves `bytes` across the bus, blocking the calling thread for the
  /// modeled duration (queuing behind other transfers in the same direction).
  /// Returns non-OK only when the fault injector fails the transfer; a
  /// transiently failed transfer still charges half the modeled duration
  /// (the wasted partial copy) but counts no bytes as transferred.
  Status Transfer(size_t bytes, TransferDirection direction,
                  bool asynchronous = true);

  /// Transfers failed by the fault injector (per reporting/tests).
  uint64_t failed_transfers() const {
    return failed_transfers_.load(std::memory_order_relaxed);
  }

  uint64_t transferred_bytes(TransferDirection direction) const {
    return bytes_[Index(direction)].load(std::memory_order_relaxed);
  }
  /// Total modeled microseconds spent transferring in `direction` (summed
  /// over threads; can exceed wall-clock when transfers overlap with compute).
  int64_t transfer_micros(TransferDirection direction) const {
    return micros_[Index(direction)].load(std::memory_order_relaxed);
  }
  uint64_t transfer_count(TransferDirection direction) const {
    return count_[Index(direction)].load(std::memory_order_relaxed);
  }

  void ResetStats();

  double bandwidth_mbps() const { return bandwidth_mbps_; }
  int device_id() const { return device_id_; }

 private:
  static int Index(TransferDirection direction) {
    return static_cast<int>(direction);
  }

  const double bandwidth_mbps_;
  const double sync_efficiency_;
  SimClock* clock_;
  FaultInjector* fault_injector_;
  const int device_id_ = 0;
  std::mutex lane_mutex_[2];
  std::atomic<uint64_t> bytes_[2] = {};
  std::atomic<int64_t> micros_[2] = {};
  std::atomic<uint64_t> count_[2] = {};
  std::atomic<uint64_t> failed_transfers_{0};
};

}  // namespace hetdb

#endif  // HETDB_SIM_PCIE_BUS_H_
