
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multi_user_robustness.cpp" "examples/CMakeFiles/multi_user_robustness.dir/multi_user_robustness.cpp.o" "gcc" "examples/CMakeFiles/multi_user_robustness.dir/multi_user_robustness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/hetdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/hetdb_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hetdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ssb/CMakeFiles/hetdb_ssb.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/hetdb_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hetdb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hype/CMakeFiles/hetdb_hype.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hetdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/operators/CMakeFiles/hetdb_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hetdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hetdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
