// Figure 6: time spent on host-to-device transfers in the B.1 selection
// workload. Operator-driven placement thrashes (transfer time explodes when
// the working set misses the cache); Data-Driven placement transfers only
// what the placement job loads.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int reps = args.quick ? 4 : 8;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  size_t working_set = 0;
  for (const char* column : kSsbSelectionColumns) {
    working_set += db->GetColumnByQualifiedName(std::string("lineorder.") +
                                                column)
                       .value()
                       ->data_bytes();
  }

  Banner("Figure 6",
         "Host-to-device transfer time in the B.1 selection workload");

  PrintHeader({"buffer[MiB]", "gpu_only_h2d[ms]", "data_driven_h2d[ms]"});
  for (int step = 0; step <= 9; ++step) {
    SystemConfig config = PaperConfig(args.time_scale);
    config.device_cache_bytes = working_set * step / 8;
    config.device_memory_bytes = config.device_cache_bytes + (16ull << 20);

    WorkloadRunOptions operator_driven;
    operator_driven.repetitions = reps;
    operator_driven.refresh_data_placement = false;
    WorkloadRunOptions data_driven;
    data_driven.repetitions = reps;

    const WorkloadRunResult gpu =
        RunPoint(config, db, Strategy::kGpuOnly, SerialSelectionQueries(),
                 operator_driven, EvictionPolicy::kLru);
    const WorkloadRunResult dd =
        RunPoint(config, db, Strategy::kDataDriven, SerialSelectionQueries(),
                 data_driven);

    PrintCell(static_cast<double>(config.device_cache_bytes) / (1 << 20));
    PrintCell(gpu.h2d_transfer_millis);
    PrintCell(dd.h2d_transfer_millis);
    EndRow();
  }
  return 0;
}
