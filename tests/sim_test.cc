#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace hetdb {
namespace {

SystemConfig FastConfig() {
  SystemConfig config;
  config.simulate_time = false;  // bookkeeping only, no sleeps
  return config;
}

TEST(DeviceAllocatorTest, AllocateAndRelease) {
  DeviceAllocator allocator(100);
  auto a = allocator.Allocate(60, "a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(allocator.used(), 60u);
  EXPECT_EQ(allocator.available(), 40u);
  {
    auto b = allocator.Allocate(40, "b");
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(allocator.used(), 100u);
    EXPECT_EQ(allocator.available(), 0u);
  }
  EXPECT_EQ(allocator.used(), 60u);  // b released by RAII
  a->Release();
  EXPECT_EQ(allocator.used(), 0u);
}

TEST(DeviceAllocatorTest, FailsWhenExhausted) {
  DeviceAllocator allocator(100);
  auto a = allocator.Allocate(80, "a");
  ASSERT_TRUE(a.ok());
  auto b = allocator.Allocate(30, "b");
  EXPECT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsResourceExhausted());
  EXPECT_EQ(allocator.failed_allocations(), 1u);
  EXPECT_EQ(allocator.used(), 80u);  // failed allocation has no effect
}

TEST(DeviceAllocatorTest, OversizedRequestAlwaysFails) {
  DeviceAllocator allocator(100);
  EXPECT_FALSE(allocator.Allocate(101, "big").ok());
  EXPECT_TRUE(allocator.Allocate(100, "exact").ok());
}

TEST(DeviceAllocatorTest, TracksPeakUsage) {
  DeviceAllocator allocator(100);
  {
    auto a = allocator.Allocate(70, "a");
    ASSERT_TRUE(a.ok());
  }
  auto b = allocator.Allocate(10, "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(allocator.peak_used(), 70u);
  allocator.ResetStats();
  EXPECT_EQ(allocator.peak_used(), 10u);
  EXPECT_EQ(allocator.failed_allocations(), 0u);
}

TEST(DeviceAllocatorTest, MoveTransfersOwnership) {
  DeviceAllocator allocator(100);
  auto a = allocator.Allocate(50, "a");
  ASSERT_TRUE(a.ok());
  DeviceAllocation moved = std::move(a).value();
  EXPECT_EQ(allocator.used(), 50u);
  DeviceAllocation second = std::move(moved);
  EXPECT_EQ(allocator.used(), 50u);
  second.Release();
  EXPECT_EQ(allocator.used(), 0u);
}

TEST(DeviceAllocatorTest, FailureInjection) {
  FaultInjector injector;
  DeviceAllocator allocator(1000, &injector);
  FaultSchedule schedule = FaultSchedule::Always(FaultKind::kHeapExhausted);
  schedule.min_bytes = 11;  // only allocations of more than 10 bytes fault
  injector.SetSchedule(FaultSite::kDeviceAlloc, schedule);
  EXPECT_TRUE(allocator.Allocate(10, "small").ok());
  Result<DeviceAllocation> large = allocator.Allocate(11, "large");
  ASSERT_FALSE(large.ok());
  EXPECT_TRUE(large.status().IsResourceExhausted());
  EXPECT_EQ(allocator.failed_allocations(), 1u);
  EXPECT_EQ(injector.faults_injected(FaultSite::kDeviceAlloc,
                                     FaultKind::kHeapExhausted),
            1u);
  injector.ClearAll();
  EXPECT_TRUE(allocator.Allocate(11, "large again").ok());
}

TEST(DeviceAllocatorTest, ConcurrentAllocationsNeverOvercommit) {
  DeviceAllocator allocator(1000);
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto a = allocator.Allocate(100, "x");
        if (a.ok()) {
          successes.fetch_add(1);
          EXPECT_LE(allocator.used(), 1000u);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(allocator.used(), 0u);
  EXPECT_GT(successes.load(), 0);
}

TEST(SimClockTest, AccumulatesChargedTime) {
  SimClock clock(/*simulate=*/false, 1.0);
  clock.Charge(100);
  clock.Charge(250);
  clock.Charge(-5);  // ignored
  EXPECT_EQ(clock.total_charged_micros(), 350);
}

TEST(SimClockTest, SimulationSleepsApproximatelyScaledTime) {
  SimClock clock(/*simulate=*/true, 0.5);
  const auto start = std::chrono::steady_clock::now();
  clock.Charge(10000);  // 10ms modeled, 5ms scaled
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 4.5);
  EXPECT_LT(elapsed_ms, 50.0);  // generous upper bound for CI noise
}

TEST(PcieBusTest, AccountsBytesAndTimePerDirection) {
  SimClock clock(false, 1.0);
  PcieBus bus(/*bandwidth_mbps=*/100, /*sync_efficiency=*/0.5, &clock);
  bus.Transfer(1000, TransferDirection::kHostToDevice);
  bus.Transfer(500, TransferDirection::kDeviceToHost);
  EXPECT_EQ(bus.transferred_bytes(TransferDirection::kHostToDevice), 1000u);
  EXPECT_EQ(bus.transferred_bytes(TransferDirection::kDeviceToHost), 500u);
  // 1000 bytes at 100 MB/s == 10 us.
  EXPECT_EQ(bus.transfer_micros(TransferDirection::kHostToDevice), 10);
  EXPECT_EQ(bus.transfer_micros(TransferDirection::kDeviceToHost), 5);
  EXPECT_EQ(bus.transfer_count(TransferDirection::kHostToDevice), 1u);
  bus.ResetStats();
  EXPECT_EQ(bus.transferred_bytes(TransferDirection::kHostToDevice), 0u);
}

TEST(PcieBusTest, SynchronousTransfersArePenalized) {
  SimClock clock(false, 1.0);
  PcieBus bus(100, 0.5, &clock);
  bus.Transfer(1000, TransferDirection::kHostToDevice, /*asynchronous=*/false);
  EXPECT_EQ(bus.transfer_micros(TransferDirection::kHostToDevice), 20);
}

TEST(PcieBusTest, ZeroByteTransferIsFree) {
  SimClock clock(false, 1.0);
  PcieBus bus(100, 0.5, &clock);
  bus.Transfer(0, TransferDirection::kHostToDevice);
  EXPECT_EQ(bus.transfer_count(TransferDirection::kHostToDevice), 0u);
}

TEST(SimulatorTest, EstimatesFollowThroughputTable) {
  SystemConfig config = FastConfig();
  config.cpu_throughput.scan_mbps = 100;
  config.gpu_throughput.scan_mbps = 1000;
  config.pcie_mbps = 50;
  Simulator sim(config);
  EXPECT_DOUBLE_EQ(
      sim.EstimateComputeMicros(ProcessorKind::kCpu, OpClass::kScan, 1000),
      10.0);
  EXPECT_DOUBLE_EQ(
      sim.EstimateComputeMicros(ProcessorKind::kGpu, OpClass::kScan, 1000),
      1.0);
  EXPECT_DOUBLE_EQ(sim.EstimateTransferMicros(1000), 20.0);
}

TEST(SimulatorTest, AllOpClassesHaveThroughputs) {
  Simulator sim(FastConfig());
  for (OpClass op : {OpClass::kScan, OpClass::kJoin, OpClass::kAggregate,
                     OpClass::kSort, OpClass::kProject, OpClass::kMaterialize}) {
    EXPECT_GT(sim.EstimateComputeMicros(ProcessorKind::kCpu, op, 1 << 20), 0);
    EXPECT_GT(sim.EstimateComputeMicros(ProcessorKind::kGpu, op, 1 << 20), 0);
    // The device is modeled faster than the CPU for every operator class.
    EXPECT_LT(sim.EstimateComputeMicros(ProcessorKind::kGpu, op, 1 << 20),
              sim.EstimateComputeMicros(ProcessorKind::kCpu, op, 1 << 20));
  }
}

TEST(SimulatorTest, HeapCapacityFollowsConfig) {
  SystemConfig config = FastConfig();
  config.device_memory_bytes = 1000;
  config.device_cache_bytes = 400;
  Simulator sim(config);
  EXPECT_EQ(sim.device_heap().capacity(), 600u);
}

TEST(SimulatorTest, ChargeComputeAccumulatesClock) {
  SystemConfig config = FastConfig();
  config.cpu_throughput.scan_mbps = 100;
  config.cpu_workers = 1;  // disable intra-operator parallelism for exactness
  Simulator sim(config);
  sim.ChargeCompute(ProcessorKind::kCpu, OpClass::kScan, 1000);
  EXPECT_EQ(sim.clock().total_charged_micros(), 10);
  sim.ChargeCompute(ProcessorKind::kGpu, OpClass::kScan, 1 << 20);
  EXPECT_GT(sim.clock().total_charged_micros(), 10);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Semaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        sem.Acquire();
        const int now = inside.fetch_add(1) + 1;
        int expected = max_inside.load();
        while (now > expected &&
               !max_inside.compare_exchange_weak(expected, now)) {
        }
        inside.fetch_sub(1);
        sem.Release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_inside.load(), 2);
}

}  // namespace
}  // namespace hetdb
