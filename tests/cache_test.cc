#include <gtest/gtest.h>

#include <thread>

#include "cache/data_cache.h"

namespace hetdb {
namespace {

class DataCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemConfig config;
    config.simulate_time = false;
    simulator_ = std::make_unique<Simulator>(config);
  }

  ColumnPtr MakeColumn(const std::string& name, size_t rows) {
    return std::make_shared<Int32Column>(name,
                                         std::vector<int32_t>(rows, 1));
  }

  std::unique_ptr<Simulator> simulator_;
};

TEST_F(DataCacheTest, MissThenHit) {
  DataCache cache(1000, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr column = MakeColumn("a", 100);  // 400 bytes

  auto first = cache.RequireOnDevice(column, "t.a");
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.resident);
  EXPECT_TRUE(first.lease.valid());
  first.lease.Release();

  auto second = cache.RequireOnDevice(column, "t.a");
  EXPECT_TRUE(second.hit);
  EXPECT_TRUE(second.resident);

  const DataCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(cache.used_bytes(), 400u);
}

TEST_F(DataCacheTest, MissPaysBusTransferOnce) {
  DataCache cache(1000, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr column = MakeColumn("a", 100);
  { auto access = cache.RequireOnDevice(column, "t.a"); }
  { auto access = cache.RequireOnDevice(column, "t.a"); }
  EXPECT_EQ(
      simulator_->bus().transferred_bytes(TransferDirection::kHostToDevice),
      400u);
}

TEST_F(DataCacheTest, LruEvictsLeastRecentlyUsed) {
  DataCache cache(1000, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100), b = MakeColumn("b", 100),
            c = MakeColumn("c", 100);
  cache.RequireOnDevice(a, "t.a");
  cache.RequireOnDevice(b, "t.b");
  cache.RequireOnDevice(a, "t.a");  // a more recent than b
  cache.RequireOnDevice(c, "t.c");  // 1200 bytes needed -> evict b
  EXPECT_TRUE(cache.IsCached("t.a"));
  EXPECT_FALSE(cache.IsCached("t.b"));
  EXPECT_TRUE(cache.IsCached("t.c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST_F(DataCacheTest, LfuEvictsLeastFrequentlyUsed) {
  DataCache cache(1000, EvictionPolicy::kLfu, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100), b = MakeColumn("b", 100),
            c = MakeColumn("c", 100);
  cache.RequireOnDevice(a, "t.a");
  cache.RequireOnDevice(a, "t.a");
  cache.RequireOnDevice(a, "t.a");  // a: 3 accesses
  cache.RequireOnDevice(b, "t.b");  // b: 1 access
  cache.RequireOnDevice(a, "t.a");  // a: 4 accesses (and most recent)
  cache.RequireOnDevice(c, "t.c");  // evicts b (LFU)
  EXPECT_TRUE(cache.IsCached("t.a"));
  EXPECT_FALSE(cache.IsCached("t.b"));
  EXPECT_TRUE(cache.IsCached("t.c"));
}

TEST_F(DataCacheTest, TransientWhenNothingFits) {
  DataCache cache(300, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr big = MakeColumn("big", 200);  // 800 bytes > capacity
  auto access = cache.RequireOnDevice(big, "t.big");
  EXPECT_FALSE(access.hit);
  EXPECT_FALSE(access.resident);
  EXPECT_FALSE(access.lease.valid());
  // The transfer still happened (into heap, paid by the caller).
  EXPECT_EQ(
      simulator_->bus().transferred_bytes(TransferDirection::kHostToDevice),
      800u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST_F(DataCacheTest, LeasedEntriesAreNotEvicted) {
  DataCache cache(800, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100), b = MakeColumn("b", 100),
            c = MakeColumn("c", 100);
  auto lease_a = cache.RequireOnDevice(a, "t.a");  // hold the lease
  cache.RequireOnDevice(b, "t.b");
  // Inserting c (400 bytes) into 800-byte cache requires evicting one entry;
  // a is leased, so b must go even though a is older.
  auto access_c = cache.RequireOnDevice(c, "t.c");
  EXPECT_TRUE(access_c.resident);
  EXPECT_TRUE(cache.IsCached("t.a"));
  EXPECT_FALSE(cache.IsCached("t.b"));
}

TEST_F(DataCacheTest, EvictionDeferredUntilLeaseRelease) {
  DataCache cache(800, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100), b = MakeColumn("b", 100);
  auto lease_a = cache.RequireOnDevice(a, "t.a");
  cache.RequireOnDevice(b, "t.b");
  // Placement job selects only b: a is marked for eviction but leased.
  b->RecordAccess();
  cache.RunPlacementJob({{"t.b", b}});
  EXPECT_FALSE(cache.IsCached("t.a"));  // pending eviction: not usable
  EXPECT_GE(cache.used_bytes(), 800u);  // but bytes still occupied
  lease_a.lease.Release();
  EXPECT_EQ(cache.used_bytes(), 400u);  // dropped on last release
}

TEST_F(DataCacheTest, PlacementJobSelectsMostFrequentColumns) {
  DataCache cache(800, EvictionPolicy::kLfu, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100), b = MakeColumn("b", 100),
            c = MakeColumn("c", 100);
  // Simulate query-processing access counts.
  for (int i = 0; i < 10; ++i) a->RecordAccess();
  for (int i = 0; i < 5; ++i) c->RecordAccess();
  b->RecordAccess();
  cache.RunPlacementJob({{"t.a", a}, {"t.b", b}, {"t.c", c}});
  // Budget fits two columns: the two most frequently accessed.
  EXPECT_TRUE(cache.IsCached("t.a"));
  EXPECT_TRUE(cache.IsCached("t.c"));
  EXPECT_FALSE(cache.IsCached("t.b"));
  EXPECT_EQ(cache.stats().placement_job_runs, 1u);
}

TEST_F(DataCacheTest, PlacementJobEvictsDeselectedColumns) {
  DataCache cache(800, EvictionPolicy::kLfu, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100), b = MakeColumn("b", 100);
  a->RecordAccess();
  b->RecordAccess();
  cache.RunPlacementJob({{"t.a", a}, {"t.b", b}});
  EXPECT_TRUE(cache.IsCached("t.a"));
  EXPECT_TRUE(cache.IsCached("t.b"));
  // Access pattern shifts: now only b is hot and a new column d joins.
  b->RecordAccess();
  b->RecordAccess();
  ColumnPtr d = MakeColumn("d", 100);
  d->RecordAccess();
  cache.RunPlacementJob({{"t.b", b}, {"t.d", d}});
  EXPECT_FALSE(cache.IsCached("t.a"));
  EXPECT_TRUE(cache.IsCached("t.b"));
  EXPECT_TRUE(cache.IsCached("t.d"));
}

TEST_F(DataCacheTest, PlacementJobRespectsBudget) {
  DataCache cache(700, EvictionPolicy::kLfu, simulator_.get());
  std::vector<std::pair<std::string, ColumnPtr>> columns;
  for (int i = 0; i < 5; ++i) {
    ColumnPtr c = MakeColumn("c" + std::to_string(i), 100);  // 400 bytes
    for (int k = 0; k < 5 - i; ++k) c->RecordAccess();
    columns.emplace_back("t.c" + std::to_string(i), c);
  }
  cache.RunPlacementJob(columns);
  EXPECT_LE(cache.used_bytes(), 700u);
  // Greedy fill by access count: c0 (most accessed) fits, c1 does not (800 >
  // 700), later smaller... all are equal-sized, so exactly one fits.
  EXPECT_TRUE(cache.IsCached("t.c0"));
  EXPECT_EQ(cache.CachedKeys().size(), 1u);
}

TEST_F(DataCacheTest, PlacementJobPinsAgainstDemandEviction) {
  DataCache cache(800, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100);
  a->RecordAccess();
  cache.RunPlacementJob({{"t.a", a}});
  // Demand-insert two more: only one fits besides pinned a, and a must stay.
  ColumnPtr b = MakeColumn("b", 100), c = MakeColumn("c", 100);
  cache.RequireOnDevice(b, "t.b");
  cache.RequireOnDevice(c, "t.c");
  EXPECT_TRUE(cache.IsCached("t.a"));
}

TEST_F(DataCacheTest, PinExplicitly) {
  DataCache cache(800, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100);
  ASSERT_TRUE(cache.Pin(a, "t.a").ok());
  EXPECT_TRUE(cache.IsCached("t.a"));
  ColumnPtr big = MakeColumn("big", 250);  // 1000 bytes never fits
  EXPECT_TRUE(cache.Pin(big, "t.big").IsResourceExhausted());
}

TEST_F(DataCacheTest, ClearDropsEverything) {
  DataCache cache(800, EvictionPolicy::kLru, simulator_.get());
  ColumnPtr a = MakeColumn("a", 100);
  cache.RequireOnDevice(a, "t.a");
  cache.Clear();
  EXPECT_FALSE(cache.IsCached("t.a"));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST_F(DataCacheTest, TryGetOnlyHitsExistingEntries) {
  DataCache cache(800, EvictionPolicy::kLru, simulator_.get());
  EXPECT_FALSE(cache.TryGet("t.a").has_value());
  ColumnPtr a = MakeColumn("a", 100);
  cache.RequireOnDevice(a, "t.a");
  EXPECT_TRUE(cache.TryGet("t.a").has_value());
}

TEST_F(DataCacheTest, ConcurrentAccessIsSafe) {
  DataCache cache(4000, EvictionPolicy::kLru, simulator_.get());
  std::vector<ColumnPtr> columns;
  for (int i = 0; i < 16; ++i) {
    columns.push_back(MakeColumn("c" + std::to_string(i), 100));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const int idx = (t * 7 + i) % 16;
        auto access = cache.RequireOnDevice(
            columns[idx], "t.c" + std::to_string(idx));
        if (access.resident) {
          EXPECT_TRUE(access.lease.valid());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.used_bytes(), 4000u);
}

/// The cache-thrashing mechanism of Figure 2: N equally-sized columns
/// accessed round-robin through a cache that holds N-1 of them miss on
/// every access under LRU.
TEST_F(DataCacheTest, RoundRobinOneShortOfCapacityAlwaysMisses) {
  const size_t column_bytes = 400;
  DataCache cache(7 * column_bytes, EvictionPolicy::kLru, simulator_.get());
  std::vector<ColumnPtr> columns;
  for (int i = 0; i < 8; ++i) {
    columns.push_back(MakeColumn("c" + std::to_string(i), 100));
  }
  // Three full rounds over 8 columns.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      cache.RequireOnDevice(columns[i], "t.c" + std::to_string(i));
    }
  }
  const DataCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 24u);
  // With a cache large enough for all 8, rounds 2..3 are pure hits.
  DataCache big_cache(8 * column_bytes, EvictionPolicy::kLru, simulator_.get());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      big_cache.RequireOnDevice(columns[i], "t.c" + std::to_string(i));
    }
  }
  EXPECT_EQ(big_cache.stats().misses, 8u);
  EXPECT_EQ(big_cache.stats().hits, 16u);
}

}  // namespace
}  // namespace hetdb
