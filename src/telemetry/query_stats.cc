#include "telemetry/query_stats.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "telemetry/exporters.h"

namespace hetdb {

namespace {

thread_local QueryStatsPtr tls_stats;
thread_local NodeStats* tls_node = nullptr;

const char* ProcessorName(int processor) {
  switch (processor) {
    case 0:
      return "CPU";
    case 1:
      return "GPU";
    default:
      return "-";
  }
}

std::string FormatBytes(int64_t bytes) {
  char buffer[32];
  if (bytes >= (1 << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%.1fMiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1 << 10)) {
    std::snprintf(buffer, sizeof(buffer), "%.1fKiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lldB",
                  static_cast<long long>(bytes));
  }
  return buffer;
}

std::string FormatMillis(int64_t micros) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fms",
                static_cast<double>(micros) / 1000.0);
  return buffer;
}

}  // namespace

NodeStats* QueryStats::AddNode(const void* key, const void* parent_key,
                               std::string op, std::string label) {
  auto node = std::make_unique<NodeStats>();
  node->index = static_cast<int>(nodes_.size());
  node->op = std::move(op);
  node->label = std::move(label);
  if (parent_key != nullptr) {
    NodeStats* parent = Find(parent_key);
    HETDB_CHECK(parent != nullptr);  // parents register before children
    node->parent = parent->index;
  }
  NodeStats* raw = node.get();
  nodes_.push_back(std::move(node));
  index_[key] = raw;
  return raw;
}

NodeStats* QueryStats::Find(const void* key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : it->second;
}

void QueryStats::MarkSubmitted() {
  if (submitted()) return;  // first call wins: keep the admission baseline
  submitted_ = std::chrono::steady_clock::now();
}

void QueryStats::MarkFinished(bool ok, const std::string& error) {
  if (finished_.load(std::memory_order_acquire)) return;
  finish_micros_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - submitted_)
          .count(),
      std::memory_order_relaxed);
  ok_.store(ok, std::memory_order_relaxed);
  error_ = error;
  finished_.store(true, std::memory_order_release);
}

void QueryStats::MarkShed(const std::string& reason) {
  if (finished_.load(std::memory_order_acquire)) return;
  shed_.store(true, std::memory_order_relaxed);
  MarkFinished(/*ok=*/false, reason);
}

int64_t QueryStats::wall_micros() const {
  const int64_t finish = finish_micros_.load(std::memory_order_relaxed);
  if (finish >= 0) return finish;
  if (submitted_ == std::chrono::steady_clock::time_point{}) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - submitted_)
      .count();
}

void QueryStats::OnTransfer(int direction, int64_t bytes, int64_t micros,
                            NodeStats* node, int device) {
  (direction == 0 ? h2d_bytes_ : d2h_bytes_)
      .fetch_add(bytes, std::memory_order_relaxed);
  (direction == 0 ? h2d_bytes_by_device_ : d2h_bytes_by_device_)[Clamp(device)]
      .fetch_add(bytes, std::memory_order_relaxed);
  transfer_micros_.fetch_add(micros, std::memory_order_relaxed);
  transfers_.fetch_add(1, std::memory_order_relaxed);
  if (node != nullptr) {
    (direction == 0 ? node->h2d_bytes : node->d2h_bytes)
        .fetch_add(bytes, std::memory_order_relaxed);
    node->transfers.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryStats::OnHeapAllocated(int64_t bytes, int64_t global_used_after,
                                 NodeStats* node, int device) {
  heap_current_.fetch_add(bytes, std::memory_order_relaxed);
  if (global_used_after > heap_high_water_.load(std::memory_order_relaxed)) {
    heap_high_water_.store(global_used_after, std::memory_order_relaxed);
  }
  alloc_bytes_by_device_[Clamp(device)].fetch_add(bytes,
                                                  std::memory_order_relaxed);
  std::atomic<int64_t>& device_hw = heap_hw_by_device_[Clamp(device)];
  if (global_used_after > device_hw.load(std::memory_order_relaxed)) {
    device_hw.store(global_used_after, std::memory_order_relaxed);
  }
  if (node != nullptr) {
    node->device_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
    if (global_used_after >
        node->heap_high_water.load(std::memory_order_relaxed)) {
      node->heap_high_water.store(global_used_after,
                                  std::memory_order_relaxed);
    }
  }
}

void QueryStats::OnD2DTransfer(int64_t bytes, int64_t micros) {
  d2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  transfer_micros_.fetch_add(micros, std::memory_order_relaxed);
  transfers_.fetch_add(1, std::memory_order_relaxed);
}

void QueryStats::OnHeapFreed(int64_t bytes) {
  heap_current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void QueryStats::OnCacheAccess(bool hit, NodeStats* node) {
  (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
  if (node != nullptr) {
    (hit ? node->cache_hits : node->cache_misses)
        .fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryStats::OnQueueWait(int64_t micros, NodeStats* node) {
  queue_wait_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (node != nullptr) {
    node->queue_wait_micros.fetch_add(micros, std::memory_order_relaxed);
  }
}

void QueryStats::OnRun(int64_t micros, NodeStats* node) {
  run_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (node != nullptr) {
    node->run_micros.fetch_add(micros, std::memory_order_relaxed);
  }
}

int64_t QueryStats::device_retries() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->device_retries.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t QueryStats::cpu_fallbacks() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->cpu_fallbacks.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t QueryStats::operators_run() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->ran_on.load(std::memory_order_relaxed) >= 0) ++total;
  }
  return total;
}

std::string QueryStats::ToText() const {
  std::ostringstream os;
  // Children per parent, in registration order (stable, deterministic).
  std::vector<std::vector<const NodeStats*>> children(nodes_.size());
  const NodeStats* root = nullptr;
  for (const auto& node : nodes_) {
    if (node->parent < 0) {
      root = node.get();
    } else {
      children[static_cast<size_t>(node->parent)].push_back(node.get());
    }
  }

  struct Printer {
    const std::vector<std::vector<const NodeStats*>>& children;
    std::ostringstream& os;
    void Print(const NodeStats& node, int depth) const {
      os << std::string(static_cast<size_t>(depth) * 2, ' ') << node.label;
      const int ran_on = node.ran_on.load(std::memory_order_relaxed);
      const int requested = node.requested.load(std::memory_order_relaxed);
      const int device = node.device.load(std::memory_order_relaxed);
      os << "  [" << ProcessorName(ran_on);
      if (ran_on == 1 && device > 0) os << ":" << device;
      if (requested >= 0 && requested != ran_on) {
        os << ", requested " << ProcessorName(requested);
      }
      os << "]";
      const int64_t rows_in = node.rows_in.load(std::memory_order_relaxed);
      const int64_t rows_out = node.rows_out.load(std::memory_order_relaxed);
      if (rows_out >= 0) {
        os << "  rows=" << rows_out;
        if (rows_in >= 0) os << " (in " << rows_in << ")";
      }
      const int64_t cpu_us =
          node.cpu_kernel_micros.load(std::memory_order_relaxed);
      const int64_t gpu_us =
          node.gpu_kernel_micros.load(std::memory_order_relaxed);
      if (cpu_us > 0) os << "  kernel_cpu=" << FormatMillis(cpu_us);
      if (gpu_us > 0) os << "  kernel_gpu=" << FormatMillis(gpu_us);
      const int64_t h2d = node.h2d_bytes.load(std::memory_order_relaxed);
      const int64_t d2h = node.d2h_bytes.load(std::memory_order_relaxed);
      os << "  pcie(h2d=" << FormatBytes(h2d) << ",d2h=" << FormatBytes(d2h)
         << ")";
      os << "  heap_hw=" << FormatBytes(
                node.heap_high_water.load(std::memory_order_relaxed));
      const int64_t hits = node.cache_hits.load(std::memory_order_relaxed);
      const int64_t misses = node.cache_misses.load(std::memory_order_relaxed);
      if (hits + misses > 0) {
        os << "  cache(h=" << hits << ",m=" << misses << ")";
      }
      const int64_t retries =
          node.device_retries.load(std::memory_order_relaxed);
      const int64_t fallbacks =
          node.cpu_fallbacks.load(std::memory_order_relaxed);
      if (retries > 0) os << "  retries=" << retries;
      if (fallbacks > 0) os << "  gpu_abort->cpu=" << fallbacks;
      os << "  wait=" << FormatMillis(
                node.queue_wait_micros.load(std::memory_order_relaxed))
         << " run=" << FormatMillis(
                node.run_micros.load(std::memory_order_relaxed));
      os << "\n";
      for (const NodeStats* child : children[static_cast<size_t>(node.index)]) {
        Print(*child, depth + 1);
      }
    }
  };
  if (root != nullptr) {
    Printer{children, os}.Print(*root, 0);
  }

  os << "-- query";
  if (query_id_ != 0) os << " #" << query_id_;
  if (!name_.empty()) os << " (" << name_ << ")";
  os << ": " << (finished() ? (ok() ? "ok" : (shed() ? "SHED" : "FAILED"))
                            : "running")
     << "  wall=" << FormatMillis(wall_micros())
     << "  pcie(h2d=" << FormatBytes(h2d_bytes())
     << ",d2h=" << FormatBytes(d2h_bytes()) << " in " << transfers()
     << " transfers, " << FormatMillis(transfer_micros()) << ")"
     << "  heap_hw=" << FormatBytes(heap_high_water()) << "  cache(h="
     << cache_hits() << ",m=" << cache_misses() << ")"
     << "  wait=" << FormatMillis(queue_wait_micros())
     << " run=" << FormatMillis(run_micros())
     << "  retries=" << device_retries()
     << " fallbacks=" << cpu_fallbacks() << "\n";
  if (finished() && !ok()) os << "   error: " << error_ << "\n";
  return os.str();
}

std::string QueryStats::ToJson() const {
  std::ostringstream os;
  os << "{\"query_id\":" << query_id_ << ",\"name\":\"" << JsonEscape(name_)
     << "\",\"status\":\""
     << (finished() ? (ok() ? "ok" : (shed() ? "shed" : "error")) : "running")
     << "\"";
  if (finished() && !ok()) os << ",\"error\":\"" << JsonEscape(error_) << "\"";
  os << ",\"wall_us\":" << wall_micros() << ",\"h2d_bytes\":" << h2d_bytes()
     << ",\"d2h_bytes\":" << d2h_bytes() << ",\"transfers\":" << transfers()
     << ",\"transfer_us\":" << transfer_micros()
     << ",\"heap_high_water\":" << heap_high_water()
     << ",\"cache_hits\":" << cache_hits()
     << ",\"cache_misses\":" << cache_misses()
     << ",\"queue_wait_us\":" << queue_wait_micros()
     << ",\"run_us\":" << run_micros()
     << ",\"device_retries\":" << device_retries()
     << ",\"cpu_fallbacks\":" << cpu_fallbacks() << ",\"nodes\":[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const NodeStats& node = *nodes_[i];
    if (i > 0) os << ',';
    os << "{\"id\":" << node.index << ",\"parent\":" << node.parent
       << ",\"op\":\"" << JsonEscape(node.op) << "\",\"label\":\""
       << JsonEscape(node.label) << "\",\"requested\":\""
       << ProcessorName(node.requested.load(std::memory_order_relaxed))
       << "\",\"ran_on\":\""
       << ProcessorName(node.ran_on.load(std::memory_order_relaxed))
       << "\",\"device\":" << node.device.load(std::memory_order_relaxed)
       << ",\"rows_in\":" << node.rows_in.load(std::memory_order_relaxed)
       << ",\"rows_out\":" << node.rows_out.load(std::memory_order_relaxed)
       << ",\"cpu_kernel_us\":"
       << node.cpu_kernel_micros.load(std::memory_order_relaxed)
       << ",\"gpu_kernel_us\":"
       << node.gpu_kernel_micros.load(std::memory_order_relaxed)
       << ",\"h2d_bytes\":" << node.h2d_bytes.load(std::memory_order_relaxed)
       << ",\"d2h_bytes\":" << node.d2h_bytes.load(std::memory_order_relaxed)
       << ",\"transfers\":" << node.transfers.load(std::memory_order_relaxed)
       << ",\"cache_hits\":"
       << node.cache_hits.load(std::memory_order_relaxed)
       << ",\"cache_misses\":"
       << node.cache_misses.load(std::memory_order_relaxed)
       << ",\"device_alloc_bytes\":"
       << node.device_alloc_bytes.load(std::memory_order_relaxed)
       << ",\"heap_high_water\":"
       << node.heap_high_water.load(std::memory_order_relaxed)
       << ",\"queue_wait_us\":"
       << node.queue_wait_micros.load(std::memory_order_relaxed)
       << ",\"run_us\":" << node.run_micros.load(std::memory_order_relaxed)
       << ",\"attempts\":" << node.attempts.load(std::memory_order_relaxed)
       << ",\"device_retries\":"
       << node.device_retries.load(std::memory_order_relaxed)
       << ",\"cpu_fallbacks\":"
       << node.cpu_fallbacks.load(std::memory_order_relaxed) << "}";
  }
  os << "]}";
  return os.str();
}

std::vector<std::pair<std::string, std::string>> QueryStats::SummaryFields()
    const {
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back(
      "status",
      finished() ? (ok() ? "ok" : (shed() ? "shed" : "error")) : "running");
  if (finished() && !ok()) fields.emplace_back("error", error_);
  fields.emplace_back("wall_us", std::to_string(wall_micros()));
  fields.emplace_back("operators", std::to_string(operators_run()));
  fields.emplace_back("h2d_bytes", std::to_string(h2d_bytes()));
  fields.emplace_back("d2h_bytes", std::to_string(d2h_bytes()));
  fields.emplace_back("heap_high_water", std::to_string(heap_high_water()));
  fields.emplace_back("cache_hits", std::to_string(cache_hits()));
  fields.emplace_back("cache_misses", std::to_string(cache_misses()));
  fields.emplace_back("queue_wait_us", std::to_string(queue_wait_micros()));
  fields.emplace_back("run_us", std::to_string(run_micros()));
  fields.emplace_back("device_retries", std::to_string(device_retries()));
  fields.emplace_back("cpu_fallbacks", std::to_string(cpu_fallbacks()));
  return fields;
}

QueryStatsScope::QueryStatsScope(QueryStatsPtr stats, NodeStats* node)
    : prev_stats_(std::move(tls_stats)), prev_node_(tls_node) {
  tls_stats = std::move(stats);
  tls_node = node;
}

QueryStatsScope::~QueryStatsScope() {
  tls_stats = std::move(prev_stats_);
  tls_node = prev_node_;
}

QueryStats* QueryStatsScope::current_stats() { return tls_stats.get(); }

NodeStats* QueryStatsScope::current_node() { return tls_node; }

QueryStatsPtr QueryStatsScope::current_stats_shared() { return tls_stats; }

}  // namespace hetdb
