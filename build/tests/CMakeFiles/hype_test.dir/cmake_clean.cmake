file(REMOVE_RECURSE
  "CMakeFiles/hype_test.dir/hype_test.cc.o"
  "CMakeFiles/hype_test.dir/hype_test.cc.o.d"
  "hype_test"
  "hype_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
