#ifndef HETDB_SQL_LEXER_H_
#define HETDB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hetdb {

/// Token kinds of the supported SQL subset.
enum class TokenKind {
  kIdentifier,  // table/column names (case-preserved)
  kKeyword,     // upper-cased reserved word (SELECT, FROM, ...)
  kInteger,     // 123
  kFloat,       // 1.5
  kString,      // 'text'
  kSymbol,      // ( ) , * . + - / = < > <= >= <>
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // keyword/symbol text, identifier, or literal spelling
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset for error messages

  bool IsKeyword(const char* word) const {
    return kind == TokenKind::kKeyword && text == word;
  }
  bool IsSymbol(const char* symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
};

/// Splits `sql` into tokens. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their spelling. Returns
/// InvalidArgument with a position on malformed input (e.g. an unterminated
/// string literal).
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace hetdb

#endif  // HETDB_SQL_LEXER_H_
