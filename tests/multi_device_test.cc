// Multi-device simulation tests: a machine with N co-processors must be
// *observably* N devices (per-device heaps, caches, buses, breakers, metric
// namespaces) and *semantically* invisible — every strategy returns the
// bit-identical single-device / CPU result at every device count, and the
// per-query attribution totals mirror the simulator's own global counters.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "tests/test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace hetdb {
namespace {

DatabasePtr SsbDb() {
  static DatabasePtr db = [] {
    SsbGeneratorOptions options;
    options.scale_factor = 0.1;
    return GenerateSsbDatabase(options);
  }();
  return db;
}

DatabasePtr TpchDb() {
  static DatabasePtr db = [] {
    TpchGeneratorOptions options;
    options.scale_factor = 0.05;
    return GenerateTpchDatabase(options);
  }();
  return db;
}

SystemConfig DeviceConfig(int device_count) {
  SystemConfig config = TestConfig();
  config.device_count = device_count;
  return config;
}

TablePtr RunOne(EngineContext& ctx, StrategyRunner& runner,
                const NamedQuery& query) {
  Result<PlanNodePtr> plan = query.builder(*ctx.database());
  EXPECT_TRUE(plan.ok()) << query.name;
  Result<TablePtr> result = runner.RunQuery(plan.value());
  EXPECT_TRUE(result.ok()) << query.name << ": "
                           << result.status().ToString();
  return result.ok() ? result.value() : nullptr;
}

/// CPU reference, computed once per (db, query).
TablePtr Reference(const DatabasePtr& db, const NamedQuery& query) {
  EngineContext ctx(TestConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  return RunOne(ctx, runner, query);
}

const Strategy kAllStrategies[] = {
    Strategy::kCpuOnly,      Strategy::kGpuOnly,
    Strategy::kCriticalPath, Strategy::kDataDriven,
    Strategy::kRunTime,      Strategy::kChopping,
    Strategy::kDataDrivenChopping,
};

// ---------------------------------------------------------------------------
// Cross-device result parity
// ---------------------------------------------------------------------------

/// SSB queries: bit-identical results on 1-, 2-, 4-, and 8-device machines
/// under every placement strategy.
TEST(MultiDeviceParityTest, SsbResultsIdenticalAcrossDeviceCounts) {
  DatabasePtr db = SsbDb();
  const std::vector<NamedQuery> queries = {
      SsbQueryByName("Q1.1").value(), SsbQueryByName("Q2.1").value(),
      SsbQueryByName("Q3.1").value(), SsbQueryByName("Q4.1").value()};
  for (const NamedQuery& query : queries) {
    TablePtr expected = Reference(db, query);
    ASSERT_NE(expected, nullptr);
    for (const int devices : {1, 2, 4, 8}) {
      for (const Strategy strategy : kAllStrategies) {
        EngineContext ctx(DeviceConfig(devices), db);
        StrategyRunner runner(&ctx, strategy);
        runner.RefreshDataPlacement();
        TablePtr actual = RunOne(ctx, runner, query);
        ASSERT_NE(actual, nullptr)
            << query.name << " " << StrategyToString(strategy) << " x"
            << devices;
        EXPECT_TRUE(TablesEqual(*expected, *actual))
            << query.name << " " << StrategyToString(strategy) << " x"
            << devices;
      }
    }
  }
}

/// TPC-H subset: same contract on the second schema, trimmed to the
/// runtime-placement strategies (the compile-time family shares the executor
/// exercised above).
TEST(MultiDeviceParityTest, TpchResultsIdenticalAcrossDeviceCounts) {
  DatabasePtr db = TpchDb();
  const std::vector<NamedQuery> queries = {TpchQueryByName("Q3").value(),
                                           TpchQueryByName("Q6").value()};
  for (const NamedQuery& query : queries) {
    TablePtr expected = Reference(db, query);
    ASSERT_NE(expected, nullptr);
    for (const int devices : {1, 2, 4, 8}) {
      for (const Strategy strategy :
           {Strategy::kGpuOnly, Strategy::kDataDrivenChopping}) {
        EngineContext ctx(DeviceConfig(devices), db);
        StrategyRunner runner(&ctx, strategy);
        runner.RefreshDataPlacement();
        TablePtr actual = RunOne(ctx, runner, query);
        ASSERT_NE(actual, nullptr)
            << query.name << " " << StrategyToString(strategy) << " x"
            << devices;
        EXPECT_TRUE(TablesEqual(*expected, *actual))
            << query.name << " " << StrategyToString(strategy) << " x"
            << devices;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-device attribution parity
// ---------------------------------------------------------------------------

/// One query on a fresh 4-device machine: the query's per-device transfer
/// and allocation attribution must mirror the simulator's own per-bus and
/// global counters exactly — nothing double-charged, nothing dropped.
TEST(MultiDeviceStatsTest, QueryStatsMirrorSimulatorCounters) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(4), db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  ctx.ResetRunStats();

  Result<PlanNodePtr> plan = SsbQueryByName("Q2.1").value().builder(*db);
  ASSERT_TRUE(plan.ok());
  auto stats = MakeQueryStats(plan.value());
  Result<TablePtr> result = runner.RunQuery(plan.value(), stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  int64_t h2d_sum = 0;
  int64_t d2h_sum = 0;
  for (int d = 0; d < ctx.device_count(); ++d) {
    const PcieBus& bus = ctx.simulator().bus(d);
    EXPECT_EQ(static_cast<uint64_t>(stats->h2d_bytes(d)),
              bus.transferred_bytes(TransferDirection::kHostToDevice))
        << "device " << d;
    EXPECT_EQ(static_cast<uint64_t>(stats->d2h_bytes(d)),
              bus.transferred_bytes(TransferDirection::kDeviceToHost))
        << "device " << d;
    h2d_sum += stats->h2d_bytes(d);
    d2h_sum += stats->d2h_bytes(d);
    EXPECT_LE(static_cast<size_t>(stats->device_heap_high_water(d)),
              ctx.simulator().device_heap(d).capacity())
        << "device " << d;
  }
  // The global aggregates are exactly the device breakdowns, re-summed.
  EXPECT_EQ(stats->h2d_bytes(), h2d_sum);
  EXPECT_EQ(stats->d2h_bytes(), d2h_sum);
  EXPECT_GT(stats->h2d_bytes(), 0);  // GPU-Only moved data somewhere
}

/// Per-device telemetry counters: operators recorded on device d land in
/// "engine.gpu_operators.device<d>", and their sum matches the global
/// counter.
TEST(MultiDeviceStatsTest, PerDeviceOperatorCountersSumToGlobal) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(4), db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  for (const char* name : {"Q1.1", "Q2.1", "Q3.1", "Q4.1"}) {
    Result<PlanNodePtr> plan = SsbQueryByName(name).value().builder(*db);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(runner.RunQuery(plan.value()).ok()) << name;
  }
  uint64_t per_device_sum = 0;
  int devices_used = 0;
  for (int d = 0; d < ctx.device_count(); ++d) {
    const uint64_t ops = ctx.telemetry().gpu_operators(d);
    per_device_sum += ops;
    if (ops > 0) ++devices_used;
  }
  EXPECT_EQ(per_device_sum, ctx.telemetry().gpu_operators());
  EXPECT_GT(per_device_sum, 0u);
  // Sharding must actually spread the four queries over the machine.
  EXPECT_GE(devices_used, 2) << "all operators landed on one device";
}

// ---------------------------------------------------------------------------
// Device-aware sharding
// ---------------------------------------------------------------------------

/// The placement job shards the column working set: a column is cached on
/// its affinity home only — no device caches another device's shard.
TEST(MultiDeviceShardingTest, PlacementJobBuildsDisjointShards) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(4), db);
  StrategyRunner runner(&ctx, Strategy::kDataDriven);
  // Touch the columns so the placement job sees access frequencies.
  for (const char* name : {"Q1.1", "Q2.1", "Q3.1"}) {
    Result<PlanNodePtr> plan = SsbQueryByName(name).value().builder(*db);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(runner.RunQuery(plan.value()).ok());
  }
  runner.RefreshDataPlacement();

  std::set<std::string> seen;
  int devices_with_content = 0;
  for (int d = 0; d < ctx.device_count(); ++d) {
    const std::vector<std::string> keys = ctx.cache(d).CachedKeys();
    if (!keys.empty()) ++devices_with_content;
    for (const std::string& key : keys) {
      EXPECT_TRUE(seen.insert(key).second)
          << key << " cached on two devices";
      EXPECT_EQ(ctx.sharding().AffinityDevice(key), d)
          << key << " cached off its affinity home";
    }
  }
  EXPECT_GE(devices_with_content, 2);
}

/// PickDevice prefers the device already holding the inputs over empty
/// round-robin candidates.
TEST(MultiDeviceShardingTest, PickDevicePrefersResidency) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(4), db);
  // Inputs resident on device 2 dominate the choice, and a big input
  // outweighs a small one on another device (migrating the small side is
  // cheaper at the paper's 100 MB/s PCIe).
  EXPECT_EQ(ctx.sharding().PickDevice({}, {{2, 4096}, {2, 4096}}, 0), 2);
  EXPECT_EQ(
      ctx.sharding().PickDevice({}, {{1, 64 << 10}, {3, 4 << 20}}, 0), 3);
  // A cached base column pulls its scan home.
  const std::string key = "lineorder.lo_quantity";
  const int home = ctx.sharding().AffinityDevice(key);
  ASSERT_GE(home, 0);
  Result<ColumnPtr> column = db->GetColumnByQualifiedName(key);
  ASSERT_TRUE(column.ok());
  ASSERT_TRUE(ctx.cache(home).Pin(column.value(), key).ok());
  EXPECT_EQ(ctx.sharding().PickDevice({key}, {}, 0), home);
}

/// The query home is deterministic per plan shape, spreads distinct query
/// templates over the devices, and biases device picks: the home wins over
/// empty candidates but loses to a large resident input elsewhere.
TEST(MultiDeviceShardingTest, QueryHomeSpreadsTemplatesAndBiasesPicks) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(4), db);
  std::set<int> homes;
  for (const NamedQuery& query : SsbQueries()) {
    Result<PlanNodePtr> plan_a = query.builder(*db);
    Result<PlanNodePtr> plan_b = query.builder(*db);
    ASSERT_TRUE(plan_a.ok() && plan_b.ok()) << query.name;
    const int home = ctx.sharding().QueryHomeDevice(*plan_a.value());
    ASSERT_GE(home, 0) << query.name;
    ASSERT_LT(home, 4) << query.name;
    // Two builds of the same template hash to the same home.
    EXPECT_EQ(ctx.sharding().QueryHomeDevice(*plan_b.value()), home)
        << query.name;
    homes.insert(home);
  }
  // 13 templates over 4 devices: the footprint hash must use >1 device.
  EXPECT_GE(homes.size(), 2u);
  // The home bonus beats cold round-robin but yields to a 1 MiB resident
  // input on another device.
  const int home = *homes.begin();
  EXPECT_EQ(ctx.sharding().PickDevice({}, {}, 0, home), home);
  const int other = (home + 1) % 4;
  EXPECT_EQ(ctx.sharding().PickDevice({}, {{other, 1 << 20}}, 0, home),
            other);
}

/// With nothing resident anywhere, keyless operators round-robin across all
/// live devices instead of piling onto device 0.
TEST(MultiDeviceShardingTest, ColdPicksSpreadAcrossDevices) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(4), db);
  std::set<int> picked;
  for (int i = 0; i < 16; ++i) {
    const int device = ctx.sharding().PickDevice({}, {}, 0);
    ASSERT_GE(device, 0);
    ASSERT_LT(device, 4);
    picked.insert(device);
  }
  EXPECT_EQ(picked.size(), 4u);
}

/// Device 0 keeps the legacy un-prefixed metric names; device d > 0 gets
/// the "device<d>." namespace — tripping one breaker must not bleed into
/// another's metrics.
TEST(MultiDeviceTelemetryTest, PerDeviceMetricNamespaces) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(3), db);
  ctx.breaker(1).RecordDeviceAbort(/*device_lost=*/true);
  EXPECT_EQ(
      ctx.telemetry().registry().GetCounter("device1.breaker.trips").value(),
      1);
  EXPECT_EQ(ctx.telemetry().registry().GetCounter("breaker.trips").value(), 0);
  EXPECT_EQ(
      ctx.telemetry().registry().GetCounter("device2.breaker.trips").value(),
      0);
  EXPECT_FALSE(ctx.breaker(1).device_available());
  EXPECT_TRUE(ctx.breaker(0).device_available());
  EXPECT_TRUE(ctx.breaker(2).device_available());
}

// ---------------------------------------------------------------------------
// D2D path accounting
// ---------------------------------------------------------------------------

/// With a dedicated D2D link, device-to-device migration charges the D2D
/// counters and neither PCIe bus; without one it stages through the host,
/// paying D2H on the source bus and H2D on the destination bus.
TEST(MultiDeviceD2DTest, DedicatedLinkVersusHostStaged) {
  SystemConfig with_link = TestConfig();
  with_link.device_count = 2;
  with_link.d2d_mbps = 1000.0;
  {
    Simulator sim(with_link);
    ASSERT_TRUE(sim.TransferDeviceToDevice(1 << 20, 0, 1).ok());
    EXPECT_EQ(sim.d2d_bytes(), static_cast<uint64_t>(1 << 20));
    EXPECT_EQ(sim.d2d_transfer_count(), 1u);
    EXPECT_EQ(sim.bus(0).transferred_bytes(TransferDirection::kDeviceToHost),
              0u);
    EXPECT_EQ(sim.bus(1).transferred_bytes(TransferDirection::kHostToDevice),
              0u);
  }
  SystemConfig host_staged = TestConfig();
  host_staged.device_count = 2;
  host_staged.d2d_mbps = 0.0;
  {
    Simulator sim(host_staged);
    ASSERT_TRUE(sim.TransferDeviceToDevice(1 << 20, 0, 1).ok());
    EXPECT_EQ(sim.d2d_bytes(), 0u);
    EXPECT_EQ(sim.bus(0).transferred_bytes(TransferDirection::kDeviceToHost),
              static_cast<uint64_t>(1 << 20));
    EXPECT_EQ(sim.bus(1).transferred_bytes(TransferDirection::kHostToDevice),
              static_cast<uint64_t>(1 << 20));
  }
}

// ---------------------------------------------------------------------------
// Rebalancing
// ---------------------------------------------------------------------------

/// RebalanceAway moves a tripped-but-reachable device's resident columns to
/// their surviving affinity homes over the D2D path and empties the source.
TEST(MultiDeviceRebalanceTest, ReachableSourceMigratesOverD2D) {
  DatabasePtr db = SsbDb();
  SystemConfig config = DeviceConfig(4);
  config.d2d_mbps = 1000.0;
  EngineContext ctx(config, db);
  const std::string key = "lineorder.lo_quantity";
  ColumnPtr column = db->GetColumnByQualifiedName(key).value();
  ASSERT_TRUE(ctx.cache(2).Pin(column, key).ok());

  ctx.sharding().MarkDeviceLost(2);
  const int moved = ctx.sharding().RebalanceAway(2, /*source_reachable=*/true);
  EXPECT_EQ(moved, 1);
  EXPECT_GT(ctx.simulator().d2d_bytes(), 0u);
  EXPECT_EQ(ctx.cache(2).used_bytes(), 0u);
  const int home = ctx.sharding().AffinityDevice(key);
  ASSERT_GE(home, 0);
  ASSERT_NE(home, 2);  // 2 is dead, affinity re-hashes over survivors
  EXPECT_TRUE(ctx.cache(home).IsCached(key));
}

/// An unreachable (lost) device's shard is re-sourced from the host copy
/// over the survivors' own PCIe links instead.
TEST(MultiDeviceRebalanceTest, LostSourceReloadsFromHost) {
  DatabasePtr db = SsbDb();
  EngineContext ctx(DeviceConfig(4), db);
  const std::string key = "lineorder.lo_discount";
  ColumnPtr column = db->GetColumnByQualifiedName(key).value();
  ASSERT_TRUE(ctx.cache(1).Pin(column, key).ok());
  ctx.ResetRunStats();

  ctx.sharding().MarkDeviceLost(1);
  const int moved = ctx.sharding().RebalanceAway(1, /*source_reachable=*/false);
  EXPECT_EQ(moved, 1);
  EXPECT_EQ(ctx.simulator().d2d_bytes(), 0u);
  EXPECT_EQ(ctx.cache(1).used_bytes(), 0u);
  const int home = ctx.sharding().AffinityDevice(key);
  ASSERT_GE(home, 0);
  EXPECT_TRUE(ctx.cache(home).IsCached(key));
  // The reload crossed the survivor's bus, not the dead device's.
  EXPECT_GT(ctx.simulator().bus(home).transferred_bytes(
                TransferDirection::kHostToDevice),
            0u);
  EXPECT_EQ(ctx.simulator().bus(1).transferred_bytes(
                TransferDirection::kHostToDevice),
            0u);
}

}  // namespace
}  // namespace hetdb
