// Interactive SQL shell over an SSB database, executed with the robust
// Data-Driven Chopping strategy on the simulated co-processor.
//
//   ./build/examples/sql_shell            # interactive
//   echo "SELECT ..." | ./build/examples/sql_shell
//
// Meta commands: \tables, \cache, \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "placement/strategy_runner.h"
#include "sql/planner.h"
#include "ssb/ssb_generator.h"

using namespace hetdb;

namespace {

void PrintValue(const Column& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt32:
      std::printf("%-18d", static_cast<const Int32Column&>(column).value(row));
      break;
    case DataType::kInt64:
      std::printf("%-18lld",
                  static_cast<long long>(
                      static_cast<const Int64Column&>(column).value(row)));
      break;
    case DataType::kDouble:
      std::printf("%-18.2f", static_cast<const DoubleColumn&>(column).value(row));
      break;
    case DataType::kString:
      std::printf("%-18s",
                  std::string(static_cast<const StringColumn&>(column).value(row))
                      .c_str());
      break;
  }
}

void PrintTable(const Table& table, size_t max_rows = 25) {
  for (const ColumnPtr& column : table.columns()) {
    std::printf("%-18s", column->name().c_str());
  }
  std::printf("\n");
  const size_t rows = std::min(max_rows, table.num_rows());
  for (size_t row = 0; row < rows; ++row) {
    for (const ColumnPtr& column : table.columns()) PrintValue(*column, row);
    std::printf("\n");
  }
  if (rows < table.num_rows()) {
    std::printf("... (%zu rows total)\n", table.num_rows());
  }
}

}  // namespace

int main() {
  std::printf("HetDB SQL shell — generating SSB database (SF 1)...\n");
  SsbGeneratorOptions gen;
  gen.scale_factor = 1.0;
  DatabasePtr db = GenerateSsbDatabase(gen);

  SystemConfig config;
  config.device_memory_bytes = 16ull << 20;
  config.device_cache_bytes = 10ull << 20;
  config.time_scale = 1.0;
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);

  std::printf(
      "Tables: lineorder, customer, supplier, part, date. Try:\n"
      "  SELECT d_year, sum(lo_revenue) AS revenue FROM lineorder, date\n"
      "  WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year;\n\n");

  std::string line;
  while (true) {
    std::printf("hetdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\tables") {
      for (const TablePtr& table : db->tables()) {
        std::printf("  %s (%zu rows, %zu columns)\n", table->name().c_str(),
                    table->num_rows(), table->num_columns());
      }
      continue;
    }
    if (line == "\\cache") {
      std::printf("  device cache: %zu / %zu bytes\n", ctx.cache().used_bytes(),
                  ctx.cache().capacity_bytes());
      for (const std::string& key : ctx.cache().CachedKeys()) {
        std::printf("    %s\n", key.c_str());
      }
      continue;
    }

    Result<PlanNodePtr> plan = PlanSql(line, *db);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      continue;
    }
    Stopwatch watch;
    Result<TablePtr> result = runner.RunQuery(plan.value());
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintTable(*result.value());
    std::printf("(%.2f ms; refreshing data placement in background)\n",
                watch.ElapsedMillis());
    // Emulate the periodic Algorithm-1 job after each statement.
    runner.RefreshDataPlacement();
  }
  return 0;
}
