#include "engine/pipeline_builder.h"

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "operators/fused_pipeline.h"
#include "telemetry/query_stats.h"

namespace hetdb {

namespace {

/// A candidate chain collected top-down from one node.
struct ChainInfo {
  std::vector<PlanNodePtr> members_top_down;
  std::vector<PlanNodePtr> builds_top_down;  ///< one per join member
  PlanNodePtr source;
};

/// Walks down from `node` collecting fusable members. Select/Project
/// continue through their child, Join through its probe child; Aggregate is
/// accepted only as the topmost member (it is a full pipeline breaker
/// anywhere else). Returns true when the chain has >= 2 members and bottoms
/// out in a Scan.
bool CollectChain(const PlanNodePtr& node, ChainInfo* out) {
  PlanNodePtr cur = node;
  bool first = true;
  bool done = false;
  while (!done) {
    switch (cur->op()) {
      case PlanOp::kAggregate:
        if (!first) {
          done = true;
          break;
        }
        out->members_top_down.push_back(cur);
        cur = cur->children()[0];
        break;
      case PlanOp::kSelect:
      case PlanOp::kProject:
        out->members_top_down.push_back(cur);
        cur = cur->children()[0];
        break;
      case PlanOp::kJoin:
        out->members_top_down.push_back(cur);
        out->builds_top_down.push_back(cur->children()[0]);
        cur = cur->children()[1];
        break;
      default:
        done = true;
        break;
    }
    first = false;
  }
  out->source = cur;
  return out->members_top_down.size() >= 2 && cur->op() == PlanOp::kScan;
}

/// Static mirror of the runtime binder's name rules: one schema column with
/// a provenance tag (0 = source, j+1 = join level j's build side, -1 =
/// computed). Types are unknown here, so the runtime binder re-checks and
/// falls back to member replay if needed; this pass only avoids fusing
/// chains that would certainly replay.
struct NameTag {
  std::string name;
  int tag = 0;
};

const NameTag* FindName(const std::vector<NameTag>& schema,
                        const std::string& name) {
  for (const NameTag& col : schema) {
    if (col.name == name) return &col;
  }
  return nullptr;
}

bool HasDuplicate(const std::vector<NameTag>& schema) {
  std::unordered_set<std::string> seen;
  for (const NameTag& col : schema) {
    if (!seen.insert(col.name).second) return true;
  }
  return false;
}

bool ValidateChain(const ChainInfo& chain) {
  const auto& scan = static_cast<const ScanNode&>(*chain.source);
  std::vector<NameTag> schema;
  for (const std::string& name : scan.columns()) schema.push_back({name, 0});

  int join_level = 0;
  const auto& members = chain.members_top_down;
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    const PlanNode& member = **it;
    switch (member.op()) {
      case PlanOp::kSelect: {
        const auto& select = static_cast<const SelectNode&>(member);
        for (const Disjunction& disjunction : select.filter().conjuncts) {
          for (const Predicate& atom : disjunction.atoms) {
            const NameTag* col = FindName(schema, atom.column);
            if (col == nullptr || col->tag != 0) return false;
          }
        }
        break;
      }
      case PlanOp::kJoin: {
        const auto& join = static_cast<const JoinNode&>(member);
        const NameTag* probe = FindName(schema, join.probe_key());
        if (probe == nullptr || probe->tag < 0) return false;
        const JoinOutputSpec& spec = join.output_spec();
        if ((!spec.build_aliases.empty() &&
             spec.build_aliases.size() != spec.build_columns.size()) ||
            (!spec.probe_aliases.empty() &&
             spec.probe_aliases.size() != spec.probe_columns.size())) {
          return false;
        }
        std::vector<NameTag> next;
        for (size_t i = 0; i < spec.build_columns.size(); ++i) {
          const std::string& out_name = spec.build_aliases.empty()
                                            ? spec.build_columns[i]
                                            : spec.build_aliases[i];
          next.push_back({out_name, join_level + 1});
        }
        for (size_t i = 0; i < spec.probe_columns.size(); ++i) {
          const NameTag* col = FindName(schema, spec.probe_columns[i]);
          if (col == nullptr) return false;
          const std::string& out_name = spec.probe_aliases.empty()
                                            ? spec.probe_columns[i]
                                            : spec.probe_aliases[i];
          next.push_back({out_name, col->tag});
        }
        if (HasDuplicate(next)) return false;
        schema = std::move(next);
        ++join_level;
        break;
      }
      case PlanOp::kProject: {
        const auto& project = static_cast<const ProjectNode&>(member);
        std::vector<NameTag> next;
        for (const std::string& name : project.keep_columns()) {
          const NameTag* col = FindName(schema, name);
          if (col == nullptr) return false;
          next.push_back(*col);
        }
        for (const ArithmeticExpr& expr : project.expressions()) {
          const NameTag* left = FindName(schema, expr.left_column);
          if (left == nullptr || left->tag < 0) return false;
          if (!expr.right_column.empty()) {
            const NameTag* right = FindName(schema, expr.right_column);
            if (right == nullptr || right->tag < 0) return false;
          }
          next.push_back({expr.output_name, -1});
        }
        if (HasDuplicate(next)) return false;
        schema = std::move(next);
        break;
      }
      case PlanOp::kAggregate: {
        const auto& agg = static_cast<const AggregateNode&>(member);
        for (const std::string& name : agg.group_by()) {
          const NameTag* col = FindName(schema, name);
          if (col == nullptr || col->tag < 0) return false;
        }
        for (const AggregateSpec& spec : agg.aggregates()) {
          if (spec.fn == AggregateFn::kCount && spec.input_column.empty()) {
            continue;  // COUNT(*)
          }
          if (FindName(schema, spec.input_column) == nullptr) return false;
        }
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

/// Rebuilds `node` with `children` (same type, same parameters). Only
/// called when at least one child actually changed.
PlanNodePtr CloneWithChildren(const PlanNodePtr& node,
                              std::vector<PlanNodePtr> children) {
  switch (node->op()) {
    case PlanOp::kSelect: {
      const auto& select = static_cast<const SelectNode&>(*node);
      return std::make_shared<SelectNode>(std::move(children[0]),
                                          select.filter());
    }
    case PlanOp::kJoin: {
      const auto& join = static_cast<const JoinNode&>(*node);
      return std::make_shared<JoinNode>(
          std::move(children[0]), std::move(children[1]), join.build_key(),
          join.probe_key(), join.output_spec());
    }
    case PlanOp::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(*node);
      return std::make_shared<AggregateNode>(std::move(children[0]),
                                             agg.group_by(), agg.aggregates());
    }
    case PlanOp::kSort: {
      const auto& sort = static_cast<const SortNode&>(*node);
      return std::make_shared<SortNode>(std::move(children[0]), sort.keys());
    }
    case PlanOp::kProject: {
      const auto& project = static_cast<const ProjectNode&>(*node);
      return std::make_shared<ProjectNode>(std::move(children[0]),
                                           project.keep_columns(),
                                           project.expressions());
    }
    case PlanOp::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(*node);
      return std::make_shared<LimitNode>(std::move(children[0]),
                                         limit.limit());
    }
    case PlanOp::kFusedPipeline: {
      const auto& fused = static_cast<const FusedPipelineNode&>(*node);
      return std::make_shared<FusedPipelineNode>(std::move(children),
                                                 fused.members());
    }
    case PlanOp::kScan:
      break;  // leaf: never cloned
  }
  HETDB_LOG(Fatal) << "CloneWithChildren: unexpected op";
  return node;
}

}  // namespace

PlanNodePtr FusePipelines(const PlanNodePtr& node, int max_fused_joins) {
  if (node == nullptr) return node;

  ChainInfo chain;
  if (CollectChain(node, &chain) &&
      (max_fused_joins < 0 ||
       chain.builds_top_down.size() <=
           static_cast<size_t>(max_fused_joins)) &&
      ValidateChain(chain)) {
    // Members run bottom-up inside the fused node; its children are the
    // (recursively rewritten) source plus one build subtree per join, in
    // bottom-up member order.
    std::vector<PlanNodePtr> members(chain.members_top_down.rbegin(),
                                     chain.members_top_down.rend());
    std::vector<PlanNodePtr> children;
    children.push_back(FusePipelines(chain.source, max_fused_joins));
    for (auto it = chain.builds_top_down.rbegin();
         it != chain.builds_top_down.rend(); ++it) {
      children.push_back(FusePipelines(*it, max_fused_joins));
    }
    return std::make_shared<FusedPipelineNode>(std::move(children),
                                               std::move(members));
  }

  std::vector<PlanNodePtr> children;
  children.reserve(node->children().size());
  bool changed = false;
  for (const PlanNodePtr& child : node->children()) {
    PlanNodePtr rewritten = FusePipelines(child, max_fused_joins);
    changed = changed || rewritten != child;
    children.push_back(std::move(rewritten));
  }
  if (!changed) return node;
  return CloneWithChildren(node, std::move(children));
}

PlanNodePtr OptimizePlan(const PlanNodePtr& root, const QueryStats* stats,
                         int max_fused_joins) {
  if (!GlobalKernelConfig().fusion) return root;
  PlanNodePtr fused = FusePipelines(root, max_fused_joins);
  const bool stats_compatible = stats == nullptr || stats->nodes().empty() ||
                                stats->Find(fused.get()) != nullptr;
  return stats_compatible ? fused : root;
}

}  // namespace hetdb
