#include "sim/simulator.h"

#include "common/logging.h"

namespace hetdb {

const char* ProcessorKindToString(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kCpu:
      return "CPU";
    case ProcessorKind::kGpu:
      return "GPU";
  }
  return "unknown";
}

Simulator::Simulator(const SystemConfig& config)
    : config_(config),
      clock_(config.simulate_time, config.time_scale),
      fault_injector_(std::make_unique<FaultInjector>()),
      device_heap_(std::make_unique<DeviceAllocator>(config.device_heap_bytes(),
                                                     fault_injector_.get())),
      bus_(std::make_unique<PcieBus>(config.pcie_mbps,
                                     config.pcie_sync_efficiency, &clock_,
                                     fault_injector_.get())),
      cpu_slots_(config.cpu_workers) {
  HETDB_CHECK(config.cpu_workers > 0);
  HETDB_CHECK(config.pcie_mbps > 0);
}

double Simulator::ThroughputMbps(ProcessorKind processor,
                                 OpClass op_class) const {
  const ThroughputTable& table = processor == ProcessorKind::kCpu
                                     ? config_.cpu_throughput
                                     : config_.gpu_throughput;
  switch (op_class) {
    case OpClass::kScan:
      return table.scan_mbps;
    case OpClass::kJoin:
      return table.join_mbps;
    case OpClass::kAggregate:
      return table.aggregate_mbps;
    case OpClass::kSort:
      return table.sort_mbps;
    case OpClass::kProject:
      return table.project_mbps;
    case OpClass::kMaterialize:
      return table.materialize_mbps;
  }
  return table.scan_mbps;
}

double Simulator::EstimateComputeMicros(ProcessorKind processor,
                                        OpClass op_class,
                                        size_t input_bytes) const {
  // bytes / (MB/s) == microseconds.
  return static_cast<double>(input_bytes) / ThroughputMbps(processor, op_class);
}

double Simulator::EstimateTransferMicros(size_t bytes) const {
  return static_cast<double>(bytes) / config_.pcie_mbps;
}

void Simulator::ChargeCompute(ProcessorKind processor, OpClass op_class,
                              size_t input_bytes) {
  const double micros = EstimateComputeMicros(processor, op_class, input_bytes);
  if (processor == ProcessorKind::kGpu) {
    std::lock_guard<std::mutex> lock(gpu_kernel_mutex_);
    clock_.Charge(micros);
  } else {
    // Intra-operator parallelism: the kernel runs on every currently idle
    // core; under high inter-operator concurrency each operator gets one.
    const int slots = cpu_slots_.AcquireUpTo(config_.cpu_workers);
    clock_.Charge(micros / slots);
    cpu_slots_.Release(slots);
  }
}

}  // namespace hetdb
