#ifndef HETDB_COMMON_CONFIG_H_
#define HETDB_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace hetdb {

/// Modeled processing throughput (MB/s of input consumed) per operator class.
///
/// These constants calibrate the co-processor simulator. Only the *ratios*
/// between CPU throughput, device throughput, and PCIe bandwidth matter for
/// reproducing the paper's effects; see DESIGN.md §2 ("Substitutions").
/// Defaults put the device at 3–5x the CPU (the paper observes 2.5–5x hot)
/// and the bus well below CPU scan speed, so a cold-cache device run loses
/// by about 3x (paper Figure 1).
struct ThroughputTable {
  double scan_mbps = 400.0;        ///< selections, scans, filters
  double join_mbps = 150.0;        ///< hash joins (build+probe)
  double aggregate_mbps = 300.0;   ///< group-by aggregation
  double sort_mbps = 200.0;        ///< sorting / order-by
  double project_mbps = 500.0;     ///< arithmetic projections
  double materialize_mbps = 800.0; ///< gather/copy-style operators
};

/// Full engine configuration: host processor, simulated co-processor, and
/// PCIe interconnect. All sizes in bytes, all rates in MB/s.
///
/// The default database scale is 1/100 of the paper's (see DESIGN.md), and
/// all capacities below are scaled accordingly: the paper's 4 GB GTX 770
/// becomes a 40 MB simulated device.
struct SystemConfig {
  // --- Host CPU ------------------------------------------------------------
  /// Number of CPU worker slots (the paper's machine has 4 cores). In
  /// chopping mode this is the CPU thread-pool size.
  int cpu_workers = 4;
  ThroughputTable cpu_throughput = {};  // defaults above

  // --- Simulated co-processor ----------------------------------------------
  /// Total device memory. Split into data cache (`device_cache_bytes`) and
  /// heap (the remainder), mirroring Section 2.1 of the paper.
  size_t device_memory_bytes = 40ull << 20;
  /// Portion of device memory reserved as the column data cache. The heap
  /// available to operators is device_memory_bytes - device_cache_bytes.
  size_t device_cache_bytes = 16ull << 20;
  /// Device worker slots used by the chopping executor *per device*; this is
  /// the upper bound on concurrently running operators on one device
  /// (Section 5.2).
  int gpu_workers = 1;
  /// Number of simulated co-processors. Each device gets its own heap
  /// allocator of `device_heap_bytes()`, data cache of `device_cache_bytes`,
  /// PCIe link, fault injector, circuit breaker, and thrashing detector —
  /// the scale-out generalization of the paper's single-GPU machine
  /// (DESIGN.md §12). The default reproduces the paper exactly.
  int device_count = 1;
  /// Device kernels run at ~2.5x the throughput of the *entire* 4-worker CPU
  /// (i.e. ~10x one core) — the hot-cache speedup the paper observes in
  /// Figure 1 and consistent with He et al. This keeps the device clearly
  /// ahead of the host, so losing device execution to aborts is genuinely
  /// expensive — the regime of the paper's heap-contention results.
  ThroughputTable gpu_throughput = {
      /*scan_mbps=*/4000.0,      /*join_mbps=*/1500.0,
      /*aggregate_mbps=*/3000.0, /*sort_mbps=*/2000.0,
      /*project_mbps=*/5000.0,   /*materialize_mbps=*/8000.0};

  // --- PCIe interconnect ---------------------------------------------------
  /// Modeled PCIe bandwidth for asynchronous (page-locked, streamed)
  /// transfers. Transfers serialize on the bus. Well below CPU scan speed,
  /// as in the paper's machine (PCIe ~8 GB/s vs tens of GB/s memory
  /// bandwidth): a cold-cache device run loses to the CPU (Figure 1).
  double pcie_mbps = 100.0;
  /// Multiplier (<1) applied to bandwidth for synchronous transfers that pay
  /// the pageable-staging penalty (Section 2.5.3).
  double pcie_sync_efficiency = 0.6;
  /// Bandwidth of the dedicated device-to-device interconnect (NVLink-style)
  /// between any pair of devices. 0 disables it: device-to-device traffic
  /// then routes through the host, paying D2H on the source device's PCIe
  /// link followed by H2D on the destination's (DESIGN.md §12).
  double d2d_mbps = 0.0;

  // --- Fault tolerance -----------------------------------------------------
  /// Device retries granted to an operator whose device attempt failed with
  /// a *transient* fault (Unavailable) before it falls back to the CPU.
  /// Persistent faults (ResourceExhausted, DeviceLost) never retry on the
  /// device — heap contention does not resolve by retrying (Section 2.5.1)
  /// and a lost device will not come back for this operator.
  int device_retry_limit = 2;
  /// Modeled backoff charged before device retry k (exponential:
  /// 2^k * this many microseconds — the *ceiling* when jitter is on).
  double device_retry_backoff_micros = 50.0;
  /// Full jitter on the retry backoff: each retry sleeps a uniform random
  /// fraction of the exponential ceiling instead of exactly the ceiling.
  /// Without it, concurrent sessions that hit the same fault burst retry in
  /// lockstep and collide again on the shared device. Draws come from a
  /// per-Simulator RNG seeded with `retry_jitter_seed`, so runs are
  /// reproducible under tests.
  bool device_retry_jitter = true;
  uint64_t retry_jitter_seed = 0x5eed'ba0full;
  /// Retries granted to a result copy-back transfer that failed transiently
  /// (D2H copies have no CPU fallback — the authoritative bytes are on the
  /// device — so the only recovery is retrying the wire).
  int transfer_retry_limit = 2;

  // --- Simulation control --------------------------------------------------
  /// If false, the simulator performs all bookkeeping (allocations, byte
  /// counters, abort behaviour) but does not sleep for modeled durations.
  /// Unit tests run with this off; benchmarks run with it on.
  bool simulate_time = true;
  /// Scales every modeled duration; <1 makes benchmarks proportionally
  /// faster without changing any ratio.
  double time_scale = 1.0;

  /// Store base columns bit-packed (frame-of-reference) in the device data
  /// cache: cache entries and their transfers shrink to the columns' real
  /// compressed sizes. Models the paper's Section 6.3 observation that
  /// compression shifts the scale factor where performance breaks down
  /// (it does not remove either robustness problem).
  bool compress_device_cache = false;

  size_t device_heap_bytes() const {
    return device_memory_bytes > device_cache_bytes
               ? device_memory_bytes - device_cache_bytes
               : 0;
  }
};

// ---------------------------------------------------------------------------
// Host kernel backend selection
// ---------------------------------------------------------------------------

/// Which implementation the shared compute kernels in `operators/kernels.cc`
/// use. Both backends are bit-identical by construction (DESIGN.md §7), so
/// this is purely a performance/verification knob.
enum class KernelBackend {
  /// Single-threaded reference implementations (simple data structures,
  /// row-at-a-time loops). Kept as the oracle the parity tests compare
  /// against and as the baseline `bench/micro_kernels` measures speedups
  /// over.
  kScalar,
  /// Cache-conscious morsel-parallel implementations on the shared task
  /// arena (`common/parallel.h`): branchless filters, partitioned
  /// open-addressing hash join, packed-key aggregation.
  kMorselParallel,
};

/// Process-global kernel settings. The kernels are context-free (they are
/// shared by every executor and placement strategy), so — like the trace
/// recorder — their configuration is process-global rather than part of
/// SystemConfig. Mutate only between queries (benchmark/test setup); the
/// kernels read it concurrently.
struct KernelConfig {
  KernelBackend backend = KernelBackend::kMorselParallel;
  /// Upper bound on workers per kernel invocation; 0 means "the DopBudget
  /// capacity" (i.e. whatever the token pool allows at that moment).
  int max_dop = 0;
  /// Rows per morsel. 16k rows keep a few touched columns of a morsel
  /// inside L1/L2 while amortizing scheduling to ~micro-seconds of work.
  size_t morsel_rows = 16 * 1024;
  /// Pipeline fusion: when true the plan-rewrite pass groups fusable
  /// filter -> join-probe -> aggregate/project chains into FusedPipeline
  /// nodes that evaluate the whole chain per morsel without materializing
  /// intermediates (DESIGN.md §11). Results are bit-identical either way;
  /// this is a performance/verification knob like `backend`.
  bool fusion = true;
};

inline KernelConfig& GlobalKernelConfig() {
  static KernelConfig config;
  return config;
}

}  // namespace hetdb

#endif  // HETDB_COMMON_CONFIG_H_
