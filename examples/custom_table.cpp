// Using HetDB as a library on your own data: build a table, register it,
// compose a physical plan with the public operators, and execute it under
// the robust Data-Driven Chopping strategy.
//
//   ./build/examples/custom_table

#include <cstdio>

#include "placement/strategy_runner.h"
#include "storage/database.h"

using namespace hetdb;

int main() {
  // 1) Build a sensor-readings table: (sensor, hour, temperature).
  auto readings = std::make_shared<Table>("readings");
  auto sensor = StringColumn::FromDictionary(
      "sensor", {"basement", "attic", "garage", "kitchen"});
  std::vector<int32_t> hour;
  std::vector<double> temperature;
  for (int h = 0; h < 24 * 365; ++h) {
    for (int s = 0; s < 4; ++s) {
      sensor->AppendCode(s);
      hour.push_back(h % 24);
      temperature.push_back(15.0 + s * 2 + (h % 24) * 0.4 + (h % 7) * 0.1);
    }
  }
  HETDB_CHECK_OK(readings->AddColumn(sensor));
  HETDB_CHECK_OK(readings->AddColumn(
      std::make_shared<Int32Column>("hour", std::move(hour))));
  HETDB_CHECK_OK(readings->AddColumn(
      std::make_shared<DoubleColumn>("temperature", std::move(temperature))));

  auto db = std::make_shared<Database>();
  HETDB_CHECK_OK(db->AddTable(readings));

  // 2) Compose: SELECT sensor, avg(temperature) FROM readings
  //             WHERE hour BETWEEN 9 AND 17 GROUP BY sensor
  //             ORDER BY avg_temp DESC
  PlanNodePtr scan = std::make_shared<ScanNode>(
      readings, std::vector<std::string>{"sensor", "hour", "temperature"});
  PlanNodePtr business_hours = std::make_shared<SelectNode>(
      std::move(scan),
      ConjunctiveFilter::And(
          {Predicate::Between("hour", int64_t{9}, int64_t{17})}));
  PlanNodePtr per_sensor = std::make_shared<AggregateNode>(
      std::move(business_hours), std::vector<std::string>{"sensor"},
      std::vector<AggregateSpec>{
          {AggregateFn::kAvg, "temperature", "avg_temp"},
          {AggregateFn::kCount, "", "samples"}});
  PlanNodePtr plan = std::make_shared<SortNode>(
      std::move(per_sensor), std::vector<SortKey>{{"avg_temp", false}});

  // 3) Execute under the robust strategy on a small simulated co-processor.
  SystemConfig config;
  config.device_memory_bytes = 2ull << 20;
  config.device_cache_bytes = 1ull << 20;
  config.time_scale = 1.0;
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);
  runner.RefreshDataPlacement();

  Result<TablePtr> result = runner.RunQuery(plan);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4) Read the result columns.
  const Table& out = *result.value();
  const auto& names = ColumnCast<StringColumn>(*out.GetColumn("sensor").value());
  const auto& avgs = ColumnCast<DoubleColumn>(*out.GetColumn("avg_temp").value());
  const auto& counts = ColumnCast<Int64Column>(*out.GetColumn("samples").value());
  std::printf("%-10s %10s %10s\n", "sensor", "avg_temp", "samples");
  for (size_t row = 0; row < out.num_rows(); ++row) {
    std::printf("%-10s %10.2f %10lld\n", std::string(names.value(row)).c_str(),
                avgs.value(row), static_cast<long long>(counts.value(row)));
  }
  return 0;
}
