// Google-benchmark microbenchmarks for the compute kernels and substrate
// primitives (real host performance, no simulation). These are not paper
// figures; they characterize the building blocks the simulator wraps.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/data_cache.h"
#include "common/config.h"
#include "common/parallel.h"
#include "operators/kernels.h"
#include "sim/simulator.h"
#include "ssb/ssb_generator.h"
#include "telemetry/exporters.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {
namespace {

DatabasePtr BenchDb() {
  static DatabasePtr db = [] {
    SsbGeneratorOptions options;
    options.scale_factor = 2.0;  // 120k lineorder rows
    return GenerateSsbDatabase(options);
  }();
  return db;
}

SystemConfig NoSimConfig() {
  SystemConfig config;
  config.simulate_time = false;
  return config;
}

/// Applies a kernel backend + worker count for one benchmark run and
/// restores the previous configuration afterwards. The DopBudget capacity is
/// raised to the requested count so the arena actually runs that wide.
class BackendGuard {
 public:
  BackendGuard(KernelBackend backend, int threads)
      : saved_(GlobalKernelConfig()),
        saved_capacity_(DopBudget::Global().capacity()) {
    GlobalKernelConfig().backend = backend;
    GlobalKernelConfig().max_dop = threads;
    DopBudget::Global().SetCapacity(threads);
  }
  ~BackendGuard() {
    GlobalKernelConfig() = saved_;
    DopBudget::Global().SetCapacity(saved_capacity_);
  }

 private:
  KernelConfig saved_;
  int saved_capacity_;
};

// The Scalar/Parallel pairs below measure the same operation on the two
// kernel backends; scripts/bench_kernels.sh records both and reports the
// speedup Parallel/threads:8 achieves over Scalar (BENCH_kernels.json).

void RunFilterBench(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  const ConjunctiveFilter filter = ConjunctiveFilter::And(
      {Predicate::Between("lo_discount", int64_t{4}, int64_t{6}),
       Predicate::Between("lo_quantity", int64_t{26}, int64_t{35})});
  for (auto _ : state) {
    auto rows = EvaluateFilter(*lineorder, filter);
    benchmark::DoNotOptimize(rows);
  }
  state.SetBytesProcessed(state.iterations() * 2 * 4 *
                          static_cast<int64_t>(lineorder->num_rows()));
}

void BM_FilterScalar(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kScalar, 1);
  RunFilterBench(state);
}
BENCHMARK(BM_FilterScalar);

void BM_FilterParallel(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunFilterBench(state);
}
BENCHMARK(BM_FilterParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void RunHashJoinBench(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  TablePtr supplier = db->GetTable("supplier").value();
  JoinOutputSpec spec;
  spec.build_columns = {"s_nation"};
  spec.probe_columns = {"lo_revenue"};
  for (auto _ : state) {
    auto joined = HashJoin(*supplier, "s_suppkey", *lineorder, "lo_suppkey",
                           spec, "j");
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lineorder->num_rows()));
}

void BM_HashJoinScalar(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kScalar, 1);
  RunHashJoinBench(state);
}
BENCHMARK(BM_HashJoinScalar);

void BM_HashJoinParallel(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunHashJoinBench(state);
}
BENCHMARK(BM_HashJoinParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void RunAggregateBench(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  for (auto _ : state) {
    auto result = Aggregate(*lineorder, {"lo_discount"},
                            {{AggregateFn::kSum, "lo_revenue", "rev"}}, "a");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lineorder->num_rows()));
}

void BM_AggregateScalar(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kScalar, 1);
  RunAggregateBench(state);
}
BENCHMARK(BM_AggregateScalar);

void BM_AggregateParallel(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunAggregateBench(state);
}
BENCHMARK(BM_AggregateParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Sort(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr customer = db->GetTable("customer").value();
  for (auto _ : state) {
    auto result = Sort(*customer, {{"c_city", true}, {"c_custkey", false}},
                       "s");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(customer->num_rows()));
}
BENCHMARK(BM_Sort);

void BM_DeviceAllocator(benchmark::State& state) {
  DeviceAllocator allocator(1ull << 30);
  for (auto _ : state) {
    auto a = allocator.Allocate(4096, "x");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_DeviceAllocator);

void BM_CacheHit(benchmark::State& state) {
  Simulator sim(NoSimConfig());
  DataCache cache(1ull << 20, EvictionPolicy::kLfu, &sim);
  auto column = std::make_shared<Int32Column>(
      "c", std::vector<int32_t>(1024, 1));
  { auto warm = cache.RequireOnDevice(column, "t.c"); }
  for (auto _ : state) {
    auto access = cache.RequireOnDevice(column, "t.c");
    benchmark::DoNotOptimize(access);
  }
}
BENCHMARK(BM_CacheHit);

// --- Telemetry overhead ------------------------------------------------------
// The acceptance bar for the telemetry subsystem: a *disabled* instrumented
// site is one relaxed atomic load — nanoseconds, i.e. <2% on any kernel.

void BM_TraceSiteDisabled(benchmark::State& state) {
  TraceRecorder::Global().SetEnabled(false);
  for (auto _ : state) {
    TraceSpan span;
    if (TraceRecorder::enabled()) {
      span.Begin("bench span", "bench");
    }
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSiteDisabled);

void BM_TraceSiteEnabled(benchmark::State& state) {
  TraceRecorder::Global().SetEnabled(true);
  for (auto _ : state) {
    TraceSpan span;
    if (TraceRecorder::enabled()) {
      span.Begin("bench span", "bench");
    }
    benchmark::DoNotOptimize(&span);
  }
  TraceRecorder::Global().SetEnabled(false);
  TraceRecorder::Global().Clear();
}
BENCHMARK(BM_TraceSiteEnabled);

}  // namespace
}  // namespace hetdb

// Custom main instead of BENCHMARK_MAIN(): peel off --trace-out=FILE (the
// flag every bench binary supports) before google-benchmark rejects it as
// unrecognized.
int main(int argc, char** argv) {
  std::vector<char*> kept;
  std::string trace_out;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      kept.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) {
    static std::string path = trace_out;
    hetdb::TraceRecorder::Global().SetEnabled(true);
    std::atexit([] {
      const auto events = hetdb::TraceRecorder::Global().Snapshot();
      (void)hetdb::WriteChromeTrace(path, events);
      std::fprintf(stderr, "# wrote %zu trace events to %s\n", events.size(),
                   path.c_str());
    });
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
