file(REMOVE_RECURSE
  "CMakeFiles/hetdb_sql.dir/lexer.cc.o"
  "CMakeFiles/hetdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/hetdb_sql.dir/parser.cc.o"
  "CMakeFiles/hetdb_sql.dir/parser.cc.o.d"
  "CMakeFiles/hetdb_sql.dir/planner.cc.o"
  "CMakeFiles/hetdb_sql.dir/planner.cc.o.d"
  "libhetdb_sql.a"
  "libhetdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
