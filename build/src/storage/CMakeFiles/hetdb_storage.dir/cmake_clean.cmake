file(REMOVE_RECURSE
  "CMakeFiles/hetdb_storage.dir/column.cc.o"
  "CMakeFiles/hetdb_storage.dir/column.cc.o.d"
  "CMakeFiles/hetdb_storage.dir/database.cc.o"
  "CMakeFiles/hetdb_storage.dir/database.cc.o.d"
  "CMakeFiles/hetdb_storage.dir/table.cc.o"
  "CMakeFiles/hetdb_storage.dir/table.cc.o.d"
  "libhetdb_storage.a"
  "libhetdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
