#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <random>
#include <thread>
#include <vector>

#include "telemetry/detector.h"
#include "telemetry/exporters.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/histogram.h"
#include "telemetry/metric_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator: full recursive-descent parse (structure only), so
// the Chrome-trace golden-shape test genuinely checks "valid JSON", not just
// substring presence.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Validate() {
    SkipSpace();
    if (!ParseValue()) return false;
    SkipSpace();
    return position_ == text_.size();
  }

 private:
  bool ParseValue() {
    if (position_ >= text_.size()) return false;
    switch (text_[position_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++position_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++position_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!ParseString()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++position_;
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++position_;
        continue;
      }
      if (Peek() == '}') {
        ++position_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++position_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++position_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++position_;
        continue;
      }
      if (Peek() == ']') {
        ++position_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++position_;
    while (position_ < text_.size()) {
      const char c = text_[position_];
      if (c == '\\') {
        position_ += 2;
        continue;
      }
      if (c == '"') {
        ++position_;
        return true;
      }
      ++position_;
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = position_;
    if (Peek() == '-') ++position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.' || text_[position_] == 'e' ||
            text_[position_] == 'E' || text_[position_] == '+' ||
            text_[position_] == '-')) {
      ++position_;
    }
    return position_ > start;
  }

  bool Literal(const char* word) {
    const size_t length = std::string(word).size();
    if (text_.compare(position_, length, word) != 0) return false;
    position_ += length;
    return true;
  }

  char Peek() const { return position_ < text_.size() ? text_[position_] : 0; }
  void SkipSpace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  const std::string& text_;
  size_t position_ = 0;
};

// Isolates each test from spans other tests (or the process) recorded.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram histogram;
  for (int value = 0; value < 16; ++value) histogram.Record(value);
  EXPECT_EQ(histogram.count(), 16u);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.max(), 15);
  EXPECT_EQ(histogram.sum(), 120);
  // Below kSubBuckets every value has its own bucket: percentiles are exact.
  EXPECT_EQ(histogram.Percentile(50), 7);
  EXPECT_EQ(histogram.Percentile(100), 15);
}

TEST(HistogramTest, UniformDistributionPercentiles) {
  Histogram histogram;
  for (int value = 1; value <= 10000; ++value) histogram.Record(value);
  EXPECT_EQ(histogram.count(), 10000u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 5000.5);
  // Log-linear buckets with 16 sub-buckets per octave: <= ~6% quantization.
  EXPECT_NEAR(histogram.Percentile(50), 5000, 5000 * 0.07);
  EXPECT_NEAR(histogram.Percentile(95), 9500, 9500 * 0.07);
  EXPECT_NEAR(histogram.Percentile(99), 9900, 9900 * 0.07);
  EXPECT_EQ(histogram.max(), 10000);
  // p100 clamps to the exact max.
  EXPECT_EQ(histogram.Percentile(100), 10000);
}

TEST(HistogramTest, ConstantDistribution) {
  Histogram histogram;
  for (int i = 0; i < 1000; ++i) histogram.Record(777);
  EXPECT_EQ(histogram.min(), 777);
  EXPECT_EQ(histogram.max(), 777);
  for (const double p : {1.0, 50.0, 95.0, 99.0, 100.0}) {
    // Every sample in one bucket, clamped to [min, max]: exact.
    EXPECT_EQ(histogram.Percentile(p), 777) << "p=" << p;
  }
}

TEST(HistogramTest, SkewedTailDistribution) {
  // 99 fast samples at ~1ms and one 100x outlier: p50 stays at the body,
  // p99.5+/max capture the tail (the Figure 21 shape).
  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(1000);
  histogram.Record(100000);
  EXPECT_NEAR(histogram.Percentile(50), 1000, 1000 * 0.07);
  EXPECT_EQ(histogram.max(), 100000);
  EXPECT_NEAR(histogram.Percentile(99), 1000, 1000 * 0.07);
  EXPECT_EQ(histogram.Percentile(100), 100000);
}

TEST(HistogramTest, NegativeClampsToZeroAndResetClears) {
  Histogram histogram;
  histogram.Record(-5);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.min(), 0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.max(), 0);
  EXPECT_EQ(histogram.Percentile(50), 0);
}

TEST(HistogramTest, BucketBoundsAreContiguous) {
  for (int index = 0; index < Histogram::kBucketCount - 1; ++index) {
    EXPECT_EQ(Histogram::BucketUpperBound(index),
              Histogram::BucketLowerBound(index + 1))
        << "at index " << index;
  }
  // Round-trip: every bucket's lower bound maps back to that bucket.
  for (int index = 0; index < 600; ++index) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(index)),
              index);
  }
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      std::mt19937 rng(t);
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(rng() % 100000);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), uint64_t{kThreads} * kPerThread);
  uint64_t reconstructed = 0;
  for (const double p : {50.0, 95.0, 99.0}) {
    EXPECT_GT(histogram.Percentile(p), 0);
  }
  (void)reconstructed;
}

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistryTest, SameNameReturnsSameInstrument) {
  MetricRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3);
  Histogram& h1 = registry.GetHistogram("h");
  Histogram& h2 = registry.GetHistogram("h");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Gauge& gauge = registry.GetGauge("g");
  Histogram& histogram = registry.GetHistogram("h");
  counter.Increment(7);
  gauge.Set(42);
  histogram.Record(100);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  // Cached references stay valid and usable after Reset.
  counter.Increment();
  EXPECT_EQ(registry.GetCounter("c").value(), 1);
}

TEST(MetricRegistryTest, SnapshotsAreSortedByName) {
  MetricRegistry registry;
  registry.GetCounter("b").Increment();
  registry.GetCounter("a").Increment();
  const auto values = registry.CounterValues();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "a");
  EXPECT_EQ(values[1].first, "b");
}

TEST(TelemetryTest, WorkloadCountersRoundTrip) {
  Telemetry telemetry;
  telemetry.RecordOperator(/*on_gpu=*/true);
  telemetry.RecordOperator(/*on_gpu=*/false);
  telemetry.RecordOperator(/*on_gpu=*/false);
  telemetry.RecordGpuAbort(1500);
  telemetry.RecordQueryDone();
  EXPECT_EQ(telemetry.gpu_operators(), 1u);
  EXPECT_EQ(telemetry.cpu_operators(), 2u);
  EXPECT_EQ(telemetry.gpu_operator_aborts(), 1u);
  EXPECT_EQ(telemetry.wasted_micros(), 1500);
  EXPECT_EQ(telemetry.queries_completed(), 1u);
  // The counters are ordinary registry metrics, visible to exporters.
  EXPECT_EQ(telemetry.registry().GetCounter("engine.gpu_operators").value(), 1);
  telemetry.Reset();
  EXPECT_EQ(telemetry.gpu_operators(), 0u);
  EXPECT_EQ(telemetry.wasted_micros(), 0);
}

TEST(TelemetryTest, QueryIdsAreUnique) {
  const uint64_t first = Telemetry::NextQueryId();
  const uint64_t second = Telemetry::NextQueryId();
  EXPECT_LT(first, second);
}

// --- TraceRecorder / TraceSpan ----------------------------------------------

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  TraceRecorder::Global().SetEnabled(false);
  {
    TraceSpan span;
    if (TraceRecorder::enabled()) span.Begin("never", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, SpanNestingAndOrdering) {
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
    }
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is ordered by start time.
  EXPECT_LE(events[0].ts_micros, events[1].ts_micros);
  const TraceEvent& outer =
      events[0].name == "outer" ? events[0] : events[1];
  const TraceEvent& inner =
      events[0].name == "inner" ? events[0] : events[1];
  ASSERT_EQ(outer.name, "outer");
  ASSERT_EQ(inner.name, "inner");
  // The inner span nests inside the outer on the timeline.
  EXPECT_GE(inner.ts_micros, outer.ts_micros);
  EXPECT_LE(inner.ts_micros + inner.dur_micros,
            outer.ts_micros + outer.dur_micros);
  // Same thread, same recorder-assigned tid.
  EXPECT_EQ(outer.tid, inner.tid);
}

TEST_F(TraceTest, SpanCarriesIdsAndArgs) {
  {
    TraceSpan span;
    span.Begin("op", "operator");
    span.SetQuery(7);
    span.SetNode(100, 50);
    span.AddArg("processor", "GPU");
    span.AddArg("bytes", int64_t{4096});
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].query_id, 7u);
  EXPECT_EQ(events[0].node_id, 100u);
  EXPECT_EQ(events[0].parent_id, 50u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "processor");
  EXPECT_EQ(events[0].args[0].second, "GPU");
  EXPECT_EQ(events[0].args[1].second, "4096");
}

TEST_F(TraceTest, ConcurrentRecordingFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span;
        if (TraceRecorder::enabled()) {
          span.Begin("concurrent", "test");
          span.AddArg("i", int64_t{i});
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  EXPECT_EQ(events.size(), size_t{kThreads} * kSpansPerThread);
  EXPECT_GE(TraceRecorder::Global().thread_count(), size_t{kThreads});
  // Snapshot is globally ordered by start timestamp.
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_micros < b.ts_micros;
                             }));
}

TEST_F(TraceTest, ClearDropsEvents) {
  {
    TraceSpan span("x", "test");
  }
  EXPECT_EQ(TraceRecorder::Global().Snapshot().size(), 1u);
  TraceRecorder::Global().Clear();
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

// --- Exporters --------------------------------------------------------------

TEST_F(TraceTest, ChromeTraceExportIsValidJsonWithRequiredFields) {
  {
    TraceSpan span;
    span.Begin("SELECT \"quoted\"\nname", "operator");  // escaping required
    span.SetQuery(3);
    span.AddArg("processor", "GPU");
  }
  RecordInstantEvent("place scan", "placement", 3, {{"processor", "CPU"}});
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const std::string json = ChromeTraceJson(events);

  JsonValidator validator(json);
  EXPECT_TRUE(validator.Validate()) << json;

  // Golden-shape: the traceEvents array and one ph/ts/dur/pid/tid per event.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  size_t events_found = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++events_found;
  }
  EXPECT_EQ(events_found, events.size());
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // The quote and newline in the span name were escaped.
  EXPECT_NE(json.find("SELECT \\\"quoted\\\"\\nname"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceExportRoundTripsThroughFile) {
  {
    TraceSpan span("file span", "test");
  }
  const std::string path = ::testing::TempDir() + "/hetdb_trace_test.json";
  const Status status =
      WriteChromeTrace(path, TraceRecorder::Global().Snapshot());
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  JsonValidator validator(content);
  EXPECT_TRUE(validator.Validate());
  EXPECT_NE(content.find("file span"), std::string::npos);
}

TEST(ExportersTest, MetricsJsonIsValidAndComplete) {
  MetricRegistry registry;
  registry.GetCounter("engine.gpu_operators").Increment(5);
  registry.GetGauge("cache.used_bytes").Set(1024);
  Histogram& histogram = registry.GetHistogram("workload.latency_us.Q1.1");
  for (int i = 1; i <= 100; ++i) histogram.Record(i * 10);

  const std::string json = MetricsJson(registry);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Validate()) << json;
  EXPECT_NE(json.find("\"engine.gpu_operators\":5"), std::string::npos);
  EXPECT_NE(json.find("\"cache.used_bytes\":1024"), std::string::npos);
  EXPECT_NE(json.find("\"workload.latency_us.Q1.1\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);

  const std::string csv = MetricsCsv(registry);
  EXPECT_NE(csv.find("kind,name,count,sum,min,max,mean,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,engine.gpu_operators"), std::string::npos);
  EXPECT_NE(csv.find("histogram,workload.latency_us.Q1.1,100"),
            std::string::npos);
}

TEST(ExportersTest, CsvEscapeQuotesSpecialFields) {
  EXPECT_EQ(CsvEscape("plain_name"), "plain_name");
  EXPECT_EQ(CsvEscape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvEscape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvEscape("has\nnewline"), "\"has\nnewline\"");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(ExportersTest, MetricsCsvEscapesMetricNames) {
  MetricRegistry registry;
  registry.GetCounter("weird,metric\"name").Increment(1);
  const std::string csv = MetricsCsv(registry);
  // Counter rows leave the histogram-only columns empty; the value lands in
  // the "sum" column.
  EXPECT_NE(csv.find("counter,\"weird,metric\"\"name\",,1"), std::string::npos)
      << csv;
}

TEST(ExportersTest, TraceSnapshotOrderIsDeterministic) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(true);
  // Spans whose begin timestamps may collide (coarse clocks): the snapshot
  // must still order them stably so exported dumps diff cleanly.
  { TraceSpan a("b_span", "test"); }
  { TraceSpan b("a_span", "test"); }
  { TraceSpan c("a_span", "test"); }
  recorder.SetEnabled(false);
  const std::vector<TraceEvent> first = recorder.Snapshot();
  const std::vector<TraceEvent> second = recorder.Snapshot();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].ts_micros, second[i].ts_micros);
    EXPECT_EQ(first[i].dur_micros, second[i].dur_micros);
  }
  for (size_t i = 1; i < first.size(); ++i) {
    const bool ordered =
        first[i - 1].ts_micros < first[i].ts_micros ||
        (first[i - 1].ts_micros == first[i].ts_micros &&
         (first[i - 1].tid < first[i].tid ||
          (first[i - 1].tid == first[i].tid &&
           first[i - 1].name <= first[i].name)));
    EXPECT_TRUE(ordered) << "unstable order at " << i;
  }
  recorder.Clear();
}

// -----------------------------------------------------------------------------
// Flight recorder
// -----------------------------------------------------------------------------

TEST(FlightRecorderTest, RecordsSnapshotOldestFirst) {
  FlightRecorder recorder(8);
  recorder.RecordStateTransition("breaker", "closed", "open");
  recorder.RecordQuerySummary(42, "Q1.1", {{"status", "ok"}});
  recorder.RecordFault("device_offline", {{"origin", "forced"}});

  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, FlightRecord::Kind::kStateTransition);
  EXPECT_EQ(records[1].kind, FlightRecord::Kind::kQuerySummary);
  EXPECT_EQ(records[1].query_id, 42u);
  EXPECT_EQ(records[2].kind, FlightRecord::Kind::kFault);
  EXPECT_LT(records[0].sequence, records[1].sequence);
  EXPECT_LE(records[0].ts_micros, records[1].ts_micros);
}

TEST(FlightRecorderTest, RingKeepsOnlyTheMostRecentRecords) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.RecordQuerySummary(static_cast<uint64_t>(i), "q", {});
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first window over the last four records (queries 6..9).
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].query_id, 6 + i);
  }
}

TEST(FlightRecorderTest, ToJsonlIsParseablePerLine) {
  FlightRecorder recorder(8);
  recorder.RecordQuerySummary(7, "sel(\"x\")", {{"status", "ok"},
                                               {"h2d_bytes", "4096"}});
  recorder.RecordStateTransition("thrash_detector", "calm", "pressure");
  const std::string jsonl = FlightRecorder::ToJsonl(recorder.Snapshot());

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < jsonl.size()) {
    const size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    JsonValidator validator(line);
    EXPECT_TRUE(validator.Validate()) << line;
    EXPECT_EQ(line.find("{\"seq\":"), 0u) << line;
    EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"kind\":"), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"kind\":\"query_summary\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"query_id\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\\\"x\\\""), std::string::npos);  // escaped name
  EXPECT_NE(lines[1].find("\"from\":\"calm\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"to\":\"pressure\""), std::string::npos);
}

TEST(FlightRecorderTest, AutoDumpWritesNumberedFiles) {
  FlightRecorder recorder(8);
  EXPECT_EQ(recorder.AutoDump("unarmed"), "");  // disarmed: no-op

  const std::string base = ::testing::TempDir() + "/hetdb_flight_test.jsonl";
  recorder.SetAutoDumpPath(base);
  recorder.RecordQuerySummary(1, "q", {{"status", "ok"}});
  const std::string first = recorder.AutoDump("breaker_trip");
  EXPECT_EQ(first, base);
  const std::string second = recorder.AutoDump("breaker_trip");
  EXPECT_EQ(second, base + ".1");

  std::FILE* file = std::fopen(first.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  // The dump closes with the reason record explaining why it was taken.
  EXPECT_NE(content.find("\"event\":\"auto_dump\""), std::string::npos);
  EXPECT_NE(content.find("\"reason\":\"breaker_trip\""), std::string::npos);
  std::remove(first.c_str());
  std::remove(second.c_str());
}

// -----------------------------------------------------------------------------
// Thrashing detector (synthetic samples)
// -----------------------------------------------------------------------------

ThrashingDetector::Sample CalmSample(int64_t step) {
  ThrashingDetector::Sample sample;
  sample.cache_hits = 100 * step;
  sample.cache_misses = step;
  sample.cache_evictions = 0;
  sample.gpu_aborts = 0;
  sample.gpu_attempts = 10 * step;
  sample.heap_used_bytes = 10;
  sample.heap_capacity_bytes = 100;
  return sample;
}

TEST(ThrashingDetectorTest, EscalatesAfterStreakAndPublishesGauge) {
  MetricRegistry registry;
  FlightRecorder recorder(16);
  ThrashingDetector::Options options;
  options.escalate_updates = 2;
  options.calm_updates = 2;
  ThrashingDetector detector(options, &registry, &recorder);

  // Window 1 establishes the baseline; churn + heap pressure afterwards.
  ThrashingDetector::Sample sample = CalmSample(1);
  detector.Update(sample);
  for (int step = 2; step <= 3; ++step) {
    sample.cache_hits += 1;
    sample.cache_misses += 10;
    sample.cache_evictions += 10;  // churn ~0.9 per window
    sample.heap_used_bytes = 95;   // 95% of capacity
    EXPECT_EQ(detector.Update(sample), step == 2
                                           ? ThrashingDetector::State::kCalm
                                           : ThrashingDetector::State::kThrashing);
  }
  EXPECT_EQ(registry.GetGauge("thrash.state").value(), 2);
  EXPECT_EQ(registry.GetCounter("thrash.transitions").value(), 1);
  EXPECT_TRUE(detector.last_signals().churn_signal);
  EXPECT_TRUE(detector.last_signals().heap_signal);

  // Calm windows de-escalate one level at a time, after `calm_updates` each.
  sample.heap_used_bytes = 10;
  for (int i = 0; i < 2; ++i) {
    sample.cache_hits += 100;
    detector.Update(sample);
  }
  EXPECT_EQ(detector.state(), ThrashingDetector::State::kPressure);
  for (int i = 0; i < 2; ++i) {
    sample.cache_hits += 100;
    detector.Update(sample);
  }
  EXPECT_EQ(detector.state(), ThrashingDetector::State::kCalm);
  EXPECT_EQ(registry.GetGauge("thrash.state").value(), 0);

  // Every transition left a post-mortem record.
  int transitions = 0;
  for (const FlightRecord& record : recorder.Snapshot()) {
    if (record.kind == FlightRecord::Kind::kStateTransition) ++transitions;
  }
  EXPECT_EQ(transitions, 3);
}

TEST(ThrashingDetectorTest, AbortStormAloneMeansThrashing) {
  ThrashingDetector::Options options;
  options.escalate_updates = 1;
  ThrashingDetector detector(options, nullptr, nullptr);
  ThrashingDetector::Sample sample = CalmSample(1);
  detector.Update(sample);
  sample.cache_hits += 100;
  sample.gpu_attempts += 10;
  sample.gpu_aborts += 8;  // 80% abort ratio
  EXPECT_EQ(detector.Update(sample), ThrashingDetector::State::kThrashing);
  EXPECT_TRUE(detector.last_signals().abort_signal);
}

TEST(ThrashingDetectorTest, SingleNoisyWindowDoesNotFlip) {
  ThrashingDetector::Options options;
  options.escalate_updates = 2;
  ThrashingDetector detector(options, nullptr, nullptr);
  ThrashingDetector::Sample sample = CalmSample(1);
  detector.Update(sample);
  // One bad window...
  sample.cache_misses += 10;
  sample.cache_evictions += 10;
  EXPECT_EQ(detector.Update(sample), ThrashingDetector::State::kCalm);
  // ...followed by a calm one: the escalate streak resets.
  sample.cache_hits += 100;
  EXPECT_EQ(detector.Update(sample), ThrashingDetector::State::kCalm);
  sample.cache_misses += 10;
  sample.cache_evictions += 10;
  EXPECT_EQ(detector.Update(sample), ThrashingDetector::State::kCalm);
  EXPECT_EQ(detector.transitions(), 0);
}

TEST(ThrashingDetectorTest, ResetReturnsToCalmAndForgetsHistory) {
  MetricRegistry registry;
  ThrashingDetector::Options options;
  options.escalate_updates = 1;
  ThrashingDetector detector(options, &registry, nullptr);
  ThrashingDetector::Sample sample = CalmSample(1);
  detector.Update(sample);
  sample.gpu_attempts += 10;
  sample.gpu_aborts += 10;
  ASSERT_EQ(detector.Update(sample), ThrashingDetector::State::kThrashing);
  detector.Reset();
  EXPECT_EQ(detector.state(), ThrashingDetector::State::kCalm);
  EXPECT_EQ(registry.GetGauge("thrash.state").value(), 0);
  // The first post-reset window only re-baselines.
  sample.cache_hits += 1;
  EXPECT_EQ(detector.Update(sample), ThrashingDetector::State::kCalm);
}

}  // namespace
}  // namespace hetdb
