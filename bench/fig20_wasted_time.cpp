// Figure 20: total *wasted time* (time from operator start to abort, summed
// over all aborted device operators) of the SSB workload vs parallel users.
// Chopping cuts wasted time by orders of magnitude (the paper reports up to
// 74x) because its concurrency bound prevents most aborts in the first
// place.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const std::vector<int> users =
      args.quick ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 16, 20};
  const std::vector<Strategy> strategies = {
      Strategy::kGpuOnly, Strategy::kRunTime, Strategy::kChopping,
      Strategy::kDataDrivenChopping};

  Banner("Figure 20",
         "Wasted time of aborted device operators, SSB workload vs users "
         "(SF " + std::to_string(static_cast<int>(sf)) + ")");

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  std::vector<std::string> header = {"users"};
  for (Strategy strategy : strategies) {
    header.push_back(std::string(StrategyToString(strategy)) + "_wasted[ms]");
    header.push_back(std::string(StrategyToString(strategy)) + "_aborts");
  }
  PrintHeader(header);

  for (int user_count : users) {
    PrintCell(static_cast<uint64_t>(user_count));
    for (Strategy strategy : strategies) {
      WorkloadRunOptions options;
      options.repetitions = args.quick ? 1 : 2;
      options.num_users = user_count;
      const WorkloadRunResult result = RunPoint(
          PaperConfig(args.time_scale), db, strategy, SsbQueries(), options);
      PrintCell(result.wasted_millis);
      PrintCell(result.gpu_aborts);
    }
    EndRow();
  }
  return 0;
}
