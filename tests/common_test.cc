#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace hetdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::ResourceExhausted("out of device memory");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.ToString(), "ResourceExhausted: out of device memory");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kNotImplemented,
        StatusCode::kAborted}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(std::move(result).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  HETDB_ASSIGN_OR_RETURN(int parsed, ParsePositive(x));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleIt(21).value(), 42);
  EXPECT_EQ(DoubleIt(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U[0,1)
}

TEST(ConfigTest, HeapIsMemoryMinusCache) {
  SystemConfig config;
  config.device_memory_bytes = 100;
  config.device_cache_bytes = 30;
  EXPECT_EQ(config.device_heap_bytes(), 70u);
  config.device_cache_bytes = 200;  // degenerate: cache exceeds memory
  EXPECT_EQ(config.device_heap_bytes(), 0u);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  const int64_t t1 = watch.ElapsedMicros();
  const int64_t t2 = watch.ElapsedMicros();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0);
}

}  // namespace
}  // namespace hetdb
