#include "fault/circuit_breaker.h"

#include <utility>

namespace hetdb {

const char* BreakerStateToString(DeviceCircuitBreaker::State state) {
  switch (state) {
    case DeviceCircuitBreaker::State::kClosed:
      return "closed";
    case DeviceCircuitBreaker::State::kOpen:
      return "open";
    case DeviceCircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

DeviceCircuitBreaker::DeviceCircuitBreaker()
    : DeviceCircuitBreaker(Options(), nullptr) {}

DeviceCircuitBreaker::DeviceCircuitBreaker(const Options& options,
                                           MetricRegistry* registry,
                                           FlightRecorder* recorder,
                                           std::string metric_prefix)
    : options_(options),
      registry_(registry),
      recorder_(recorder),
      metric_prefix_(std::move(metric_prefix)) {
  window_.assign(static_cast<size_t>(options_.window), false);
}

void DeviceCircuitBreaker::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  window_.assign(static_cast<size_t>(options_.window), false);
  window_next_ = window_count_ = window_aborts_ = 0;
  cooldown_denials_seen_ = probes_inflight_ = probe_successes_ = 0;
  state_ = State::kClosed;
  if (registry_ != nullptr) {
    registry_->GetGauge(metric_prefix_ + "breaker.state").Set(static_cast<int>(state_));
  }
}

void DeviceCircuitBreaker::TransitionLocked(State next) {
  if (state_ == next) return;
  if (next == State::kOpen) {
    ++trips_;
    cooldown_denials_seen_ = 0;
    opened_at_ = std::chrono::steady_clock::now();
  }
  if (next == State::kHalfOpen) {
    probes_inflight_ = 0;
    probe_successes_ = 0;
  }
  if (next == State::kClosed) {
    // Fresh window: the pre-trip abort history must not re-trip instantly.
    window_.assign(window_.size(), false);
    window_next_ = window_count_ = window_aborts_ = 0;
  }
  const State prev = state_;
  state_ = next;
  if (registry_ != nullptr) {
    registry_->GetGauge(metric_prefix_ + "breaker.state").Set(static_cast<int>(state_));
    registry_
        ->GetCounter(metric_prefix_ + "breaker.transitions." +
                     BreakerStateToString(state_))
        .Increment();
    if (next == State::kOpen) registry_->GetCounter(metric_prefix_ + "breaker.trips").Increment();
  }
  if (recorder_ != nullptr) {
    recorder_->RecordStateTransition(metric_prefix_ + "breaker", BreakerStateToString(prev),
                                     BreakerStateToString(next));
    // The trip is the post-mortem moment: freeze the recent history now,
    // while the queries that drove the abort storm are still in the ring.
    if (next == State::kOpen) recorder_->AutoDump(metric_prefix_ + "breaker_trip");
  }
}

void DeviceCircuitBreaker::DenyLocked() {
  ++denials_;
  if (registry_ != nullptr) registry_->GetCounter(metric_prefix_ + "breaker.denials").Increment();
  ++cooldown_denials_seen_;
  if (cooldown_denials_seen_ >= options_.cooldown_denials) {
    TransitionLocked(State::kHalfOpen);
  }
}

void DeviceCircuitBreaker::MaybeCooldownLocked() {
  if (state_ != State::kOpen || options_.cooldown_micros == 0) return;
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - opened_at_);
  if (static_cast<uint64_t>(elapsed.count()) >= options_.cooldown_micros) {
    // Unlike the denial-counted path, the wait already happened in wall
    // time, so the triggering request itself becomes the first probe.
    TransitionLocked(State::kHalfOpen);
  }
}

bool DeviceCircuitBreaker::AllowDevice() {
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeCooldownLocked();
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      DenyLocked();
      // A denial that just half-opened the breaker still runs on the CPU;
      // the *next* request becomes the probe.
      return false;
    case State::kHalfOpen:
      if (probes_inflight_ < options_.half_open_probes) {
        ++probes_inflight_;
        return true;
      }
      ++denials_;
      if (registry_ != nullptr) {
        registry_->GetCounter(metric_prefix_ + "breaker.denials").Increment();
      }
      return false;
  }
  return true;
}

bool DeviceCircuitBreaker::device_available() {
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeCooldownLocked();
  if (state_ != State::kOpen) return true;
  DenyLocked();
  return false;
}

void DeviceCircuitBreaker::RecordDeviceSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed: {
      const bool evicted = window_[static_cast<size_t>(window_next_)];
      window_[static_cast<size_t>(window_next_)] = false;
      window_next_ = (window_next_ + 1) % static_cast<int>(window_.size());
      if (window_count_ < static_cast<int>(window_.size())) {
        ++window_count_;
      } else if (evicted) {
        --window_aborts_;
      }
      return;
    }
    case State::kHalfOpen:
      if (probes_inflight_ > 0) --probes_inflight_;
      ++probe_successes_;
      if (probe_successes_ >= options_.probes_to_close) {
        TransitionLocked(State::kClosed);
      }
      return;
    case State::kOpen:
      return;  // straggler admitted before the trip; ignore
  }
}

void DeviceCircuitBreaker::RecordDeviceAbort(bool device_lost) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device_lost) {
    TransitionLocked(State::kOpen);
    return;
  }
  switch (state_) {
    case State::kClosed: {
      const bool evicted = window_[static_cast<size_t>(window_next_)];
      window_[static_cast<size_t>(window_next_)] = true;
      window_next_ = (window_next_ + 1) % static_cast<int>(window_.size());
      if (window_count_ < static_cast<int>(window_.size())) {
        ++window_count_;
        ++window_aborts_;
      } else if (!evicted) {
        ++window_aborts_;
      }
      if (window_count_ >= options_.min_samples &&
          static_cast<double>(window_aborts_) >=
              options_.trip_ratio * static_cast<double>(window_count_)) {
        TransitionLocked(State::kOpen);
      }
      return;
    }
    case State::kHalfOpen:
      if (probes_inflight_ > 0) --probes_inflight_;
      TransitionLocked(State::kOpen);  // probe failed: back off again
      return;
    case State::kOpen:
      return;
  }
}

DeviceCircuitBreaker::State DeviceCircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t DeviceCircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

uint64_t DeviceCircuitBreaker::denials() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return denials_;
}

void DeviceCircuitBreaker::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  window_.assign(window_.size(), false);
  window_next_ = window_count_ = window_aborts_ = 0;
  cooldown_denials_seen_ = probes_inflight_ = probe_successes_ = 0;
  state_ = State::kClosed;
  if (registry_ != nullptr) {
    registry_->GetGauge(metric_prefix_ + "breaker.state").Set(static_cast<int>(state_));
  }
}

}  // namespace hetdb
