file(REMOVE_RECURSE
  "CMakeFiles/hetdb_ssb.dir/ssb_generator.cc.o"
  "CMakeFiles/hetdb_ssb.dir/ssb_generator.cc.o.d"
  "CMakeFiles/hetdb_ssb.dir/ssb_queries.cc.o"
  "CMakeFiles/hetdb_ssb.dir/ssb_queries.cc.o.d"
  "libhetdb_ssb.a"
  "libhetdb_ssb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_ssb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
