#ifndef HETDB_SQL_AST_H_
#define HETDB_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "operators/expression.h"

namespace hetdb {

/// A scalar expression in a SELECT item or aggregate argument: a column, or
/// `column <op> column`, or `column <op> constant`.
struct SqlExpr {
  std::string column;
  bool has_arithmetic = false;
  ArithmeticExpr::Op op = ArithmeticExpr::Op::kMul;
  std::string rhs_column;     // empty => rhs_constant
  double rhs_constant = 0;
  bool rhs_is_constant = false;

  bool IsPlainColumn() const { return !has_arithmetic; }

  /// Columns referenced by the expression.
  std::vector<std::string> Columns() const {
    std::vector<std::string> columns = {column};
    if (has_arithmetic && !rhs_is_constant) columns.push_back(rhs_column);
    return columns;
  }
};

/// One item of the SELECT list.
struct SelectItem {
  enum class Kind { kExpression, kAggregate };
  Kind kind = Kind::kExpression;
  SqlExpr expr;                       // argument (empty column for COUNT(*))
  AggregateFn fn = AggregateFn::kSum; // for kAggregate
  std::string alias;                  // output name ("" => derived)

  std::string OutputName() const;
};

/// One conjunct of the WHERE clause.
struct SqlPredicate {
  enum class Kind {
    kCompare,   // column <op> literal
    kBetween,   // column BETWEEN literal AND literal
    kIn,        // column IN (literal, ...)
    kColumnEq,  // column = column (join predicate or same-table filter)
  };
  Kind kind = Kind::kCompare;
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value;
  Value value2;                 // BETWEEN upper bound
  std::vector<Value> in_list;   // IN list
  std::string rhs_column;       // kColumnEq
};

/// A parsed SELECT statement of the supported subset:
///
///   SELECT item [, item ...]
///   FROM table [, table ...]
///   [WHERE conjunct [AND conjunct ...]]
///   [GROUP BY column [, ...]]
///   [ORDER BY column [ASC|DESC] [, ...]]
///   [LIMIT n]
struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<std::string> tables;
  std::vector<SqlPredicate> where;
  std::vector<std::string> group_by;
  std::vector<SortKey> order_by;
  std::optional<size_t> limit;
};

}  // namespace hetdb

#endif  // HETDB_SQL_AST_H_
