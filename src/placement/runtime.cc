#include "placement/runtime.h"

namespace hetdb {

namespace {

/// Conservative device-heap footprint estimate: bytes that must be newly
/// allocated (missing inputs), intermediates, and a worst-case result the
/// size of the input.
size_t EstimateDeviceFootprint(const PlanNode& node,
                               const std::vector<OperatorResult*>& inputs,
                               size_t missing_input_bytes) {
  std::vector<TablePtr> input_tables;
  input_tables.reserve(inputs.size());
  size_t input_bytes = 0;
  for (OperatorResult* input : inputs) {
    input_tables.push_back(input->table);
    input_bytes += input->table_bytes();
  }
  if (node.op() == PlanOp::kScan) input_bytes = node.InputBytes({});
  return missing_input_bytes + node.IntermediateDeviceBytes(input_tables) +
         input_bytes;
}

/// Bytes of input not yet device-resident.
size_t MissingInputBytes(const PlanNode& node,
                         const std::vector<OperatorResult*>& inputs,
                         EngineContext& ctx) {
  if (node.op() == PlanOp::kScan) {
    const auto& scan = static_cast<const ScanNode&>(node);
    size_t missing = 0;
    for (const auto& [key, column] : scan.base_columns()) {
      if (!ctx.IsCachedOnAnyDevice(key)) missing += column->data_bytes();
    }
    return missing;
  }
  size_t missing = 0;
  for (OperatorResult* input : inputs) {
    if (input->location != ProcessorKind::kGpu) missing += input->table_bytes();
  }
  return missing;
}

}  // namespace

RuntimePlacer MakeHypePlacer() {
  return [](const PlanNode& node, const std::vector<OperatorResult*>& inputs,
            EngineContext& ctx) -> ProcessorKind {
    if (!ctx.AnyDeviceAvailable()) {
      // Every breaker open (abort storm) or every device lost: device
      // placement would be denied at execution time anyway, so place on the
      // CPU outright.
      return ProcessorKind::kCpu;
    }
    const size_t missing = MissingInputBytes(node, inputs, ctx);
    if (EstimateDeviceFootprint(node, inputs, missing) >
        ctx.simulator().device_heap().capacity()) {
      return ProcessorKind::kCpu;  // cannot possibly fit: don't even try
    }
    size_t input_bytes = 0;
    size_t device_resident = 0;
    for (OperatorResult* input : inputs) {
      input_bytes += input->table_bytes();
      // Base data always has a host copy; only device-produced intermediates
      // would need a copy-back under CPU placement.
      if (input->location == ProcessorKind::kGpu && !input->base_data) {
        device_resident += input->table_bytes();
      }
    }
    if (node.op() == PlanOp::kScan) input_bytes = node.InputBytes({});
    return ctx.scheduler().ChooseProcessor(node.op_class(), input_bytes,
                                           missing, device_resident);
  };
}

RuntimePlacer MakeDataDrivenPlacer() {
  return [](const PlanNode& node, const std::vector<OperatorResult*>& inputs,
            EngineContext& ctx) -> ProcessorKind {
    if (!ctx.AnyDeviceAvailable()) return ProcessorKind::kCpu;
    const size_t missing = MissingInputBytes(node, inputs, ctx);
    if (missing > 0) return ProcessorKind::kCpu;
    if (EstimateDeviceFootprint(node, inputs, 0) >
        ctx.simulator().device_heap().capacity()) {
      return ProcessorKind::kCpu;
    }
    return ProcessorKind::kGpu;
  };
}

}  // namespace hetdb
