// Figure 16: memory footprint of the SSB and TPC-H workloads vs scale
// factor, against the device data-cache capacity. The paper's point: from
// SF 15 the working set significantly exceeds the cache, which is where the
// cache-thrashing effect starts in Figure 14. Computed from real generated
// data (bytes of every base column the workload's queries reference).

#include <set>

#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

/// Bytes of all base columns referenced by the workload's scans.
size_t WorkloadFootprint(const DatabasePtr& db,
                         const std::vector<NamedQuery>& queries) {
  std::set<std::string> referenced;
  size_t bytes = 0;
  for (const NamedQuery& query : queries) {
    Result<PlanNodePtr> plan = query.builder(*db);
    HETDB_CHECK(plan.ok());
    VisitPlanPostOrder(plan.value(), [&](const PlanNodePtr& node) {
      if (node->op() != PlanOp::kScan) return;
      const auto& scan = static_cast<const ScanNode&>(*node);
      for (const auto& [key, column] : scan.base_columns()) {
        if (referenced.insert(key).second) bytes += column->data_bytes();
      }
    });
  }
  return bytes;
}

}  // namespace

/// Per-query device-heap high-water mark under GPU-Only, fusion off vs on.
/// The base-column footprint above is fusion-independent; the *transient*
/// footprint is where fusion bites — a fused pipeline charges only its join
/// build tables, not per-member intermediates (DESIGN.md §11).
void FusionAblation(const BenchArgs& args) {
  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = args.quick ? 1 : 5;
  DatabasePtr db = GenerateSsbDatabase(gen);

  std::printf("#\n# Fusion ablation: per-query device-heap high-water "
              "(GPU-Only, SF %.0f)\n", gen.scale_factor);
  PrintHeader({"query", "unfused[KiB]", "fused[KiB]", "ratio"});
  const bool saved_fusion = GlobalKernelConfig().fusion;
  for (const NamedQuery& query : SsbQueries()) {
    int64_t high_water[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      GlobalKernelConfig().fusion = pass == 1;
      EngineContext ctx(PaperConfig(args.time_scale), db);
      StrategyRunner runner(&ctx, Strategy::kGpuOnly);
      runner.RefreshDataPlacement();
      Result<PlanNodePtr> plan = query.builder(*db);
      HETDB_CHECK(plan.ok());
      auto stats = std::make_shared<QueryStats>();
      Result<TablePtr> result = runner.RunQuery(plan.value(), stats);
      HETDB_CHECK(result.ok());
      high_water[pass] = stats->heap_high_water();
    }
    GlobalKernelConfig().fusion = saved_fusion;
    PrintCell(query.name);
    PrintCell(static_cast<double>(high_water[0]) / 1024.0);
    PrintCell(static_cast<double>(high_water[1]) / 1024.0);
    PrintCell(high_water[1] > 0
                  ? static_cast<double>(high_water[0]) /
                        static_cast<double>(high_water[1])
                  : 0.0);
    EndRow();
  }
}

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Figure 16",
         "Workload memory footprint vs scale factor (device cache: 24 MiB)");
  FusionAblation(args);
  PrintHeader({"sf", "ssb[MiB]", "tpch[MiB]", "cache[MiB]"});
  for (double sf : args.quick ? std::vector<double>{5, 10}
                              : std::vector<double>{5, 10, 15, 20, 25, 30}) {
    SsbGeneratorOptions ssb_gen;
    args.ApplySeed(ssb_gen);
    ssb_gen.scale_factor = sf;
    DatabasePtr ssb_db = GenerateSsbDatabase(ssb_gen);
    TpchGeneratorOptions tpch_gen;
    args.ApplySeed(tpch_gen);
    tpch_gen.scale_factor = sf;
    DatabasePtr tpch_db = GenerateTpchDatabase(tpch_gen);
    PrintCell(static_cast<uint64_t>(sf));
    PrintCell(static_cast<double>(WorkloadFootprint(ssb_db, SsbQueries())) /
              (1 << 20));
    PrintCell(static_cast<double>(WorkloadFootprint(tpch_db, TpchQueries())) /
              (1 << 20));
    PrintCell(static_cast<double>(PaperConfig().device_cache_bytes) /
              (1 << 20));
    EndRow();
  }
  return 0;
}
