#include "telemetry/flight_recorder.h"

#include <fstream>
#include <sstream>

#include "telemetry/exporters.h"

namespace hetdb {

const char* FlightRecordKindName(FlightRecord::Kind kind) {
  switch (kind) {
    case FlightRecord::Kind::kQuerySummary:
      return "query_summary";
    case FlightRecord::Kind::kStateTransition:
      return "state_transition";
    case FlightRecord::Kind::kFault:
      return "fault";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

int64_t FlightRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void FlightRecorder::Record(FlightRecord record) {
  record.ts_micros = NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  record.sequence = next_sequence_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[record.sequence % capacity_] = std::move(record);
  }
}

void FlightRecorder::RecordQuerySummary(
    uint64_t query_id, const std::string& name,
    std::vector<std::pair<std::string, std::string>> fields) {
  FlightRecord record;
  record.kind = FlightRecord::Kind::kQuerySummary;
  record.query_id = query_id;
  record.name = name;
  record.fields = std::move(fields);
  Record(std::move(record));
}

void FlightRecorder::RecordStateTransition(const std::string& component,
                                           const std::string& from,
                                           const std::string& to) {
  FlightRecord record;
  record.kind = FlightRecord::Kind::kStateTransition;
  record.name = component;
  record.fields = {{"from", from}, {"to", to}};
  Record(std::move(record));
}

void FlightRecorder::RecordFault(
    const std::string& site,
    std::vector<std::pair<std::string, std::string>> fields) {
  FlightRecord record;
  record.kind = FlightRecord::Kind::kFault;
  record.name = site;
  record.fields = std::move(fields);
  Record(std::move(record));
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // The ring is full: the oldest record lives at next_sequence_ % capacity_.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_sequence_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_;
}

std::string FlightRecorder::ToJsonl(const std::vector<FlightRecord>& records) {
  std::ostringstream os;
  for (const FlightRecord& record : records) {
    os << "{\"seq\":" << record.sequence << ",\"ts_us\":" << record.ts_micros
       << ",\"kind\":\"" << FlightRecordKindName(record.kind) << "\"";
    if (record.query_id != 0) os << ",\"query_id\":" << record.query_id;
    os << ",\"name\":\"" << JsonEscape(record.name) << "\"";
    for (const auto& [key, value] : record.fields) {
      os << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
    }
    os << "}\n";
  }
  return os.str();
}

bool FlightRecorder::Dump(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJsonl(Snapshot());
  return static_cast<bool>(out);
}

void FlightRecorder::SetAutoDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto_dump_path_ = std::move(path);
  auto_dump_count_ = 0;
}

std::string FlightRecorder::AutoDump(const std::string& reason) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto_dump_path_.empty()) return "";
    path = auto_dump_path_;
    if (auto_dump_count_ > 0) {
      path += '.';
      path += std::to_string(auto_dump_count_);
    }
    ++auto_dump_count_;
  }
  // Tag the dump with its trigger before writing, so the reason is part of
  // the JSONL history itself.
  FlightRecord record;
  record.kind = FlightRecord::Kind::kStateTransition;
  record.name = "flight_recorder";
  record.fields = {{"event", "auto_dump"}, {"reason", reason}};
  Record(std::move(record));
  if (!Dump(path)) return "";
  return path;
}

}  // namespace hetdb
