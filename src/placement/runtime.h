#ifndef HETDB_PLACEMENT_RUNTIME_H_
#define HETDB_PLACEMENT_RUNTIME_H_

#include "engine/chopping_executor.h"

namespace hetdb {

/// Operator-driven run-time placement (Sections 4 and 5.2): HyPE picks the
/// processor with the lower estimated completion time, accounting for
/// queue load and the bytes that would have to cross the bus. Operators
/// whose estimated device footprint exceeds the heap go straight to the CPU.
RuntimePlacer MakeHypePlacer();

/// Data-driven run-time placement (Section 5.4): scans go to the device iff
/// all their input columns are cached there; other operators go to the
/// device iff every input is device-resident. After an abort the restarted
/// operator's output is host-resident, so successors fall back to the CPU
/// automatically.
RuntimePlacer MakeDataDrivenPlacer();

}  // namespace hetdb

#endif  // HETDB_PLACEMENT_RUNTIME_H_
