#ifndef HETDB_SQL_PLANNER_H_
#define HETDB_SQL_PLANNER_H_

#include <string>

#include "operators/plan_node.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace hetdb {

/// Translates a parsed SELECT statement into a physical plan tree.
///
/// Planning steps (a miniature of CoGaDB's strategic optimizer):
///  1. resolve columns against the catalog (column names must be unique
///     across the referenced tables, as in the SSB/TPC-H schemas);
///  2. push filters down to per-table scan+select subplans;
///  3. order joins greedily by estimated (filtered) input size, building the
///     hash table on the smaller side; column-equality predicates that are
///     not needed for connectivity become residual filters evaluated as a
///     projected difference (how HetDB runs TPC-H Q5/Q7's nation joins);
///  4. add projection, aggregation, ORDER BY, and LIMIT.
Result<PlanNodePtr> PlanQuery(const SelectStatement& statement,
                              const Database& db);

/// Convenience: parse + plan.
Result<PlanNodePtr> PlanSql(const std::string& sql, const Database& db);

}  // namespace hetdb

#endif  // HETDB_SQL_PLANNER_H_
