#ifndef HETDB_FAULT_BROWNOUT_H_
#define HETDB_FAULT_BROWNOUT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"

namespace hetdb {

/// System-wide degradation levels (DESIGN.md §13). Each level keeps every
/// lower level's restrictions and adds its own:
///
///   kL0 — normal operation; no restrictions.
///   kL1 — cap intra-operator DoP (ScopedDopCap) and disable multi-join
///         fusion: fused multi-join pipelines hold *all* build tables
///         resident at once (the PR-8 ablation's worst case), exactly the
///         footprint that deepens heap contention.
///   kL2 — device-cache admission restricted: misses still transfer but no
///         longer demand-insert, so the resident hot set stops churning; and
///         only *hot* query templates (seen >= hot_template_min_hits times)
///         may place on a device — cold/one-off queries run on the CPU,
///         keeping the device heap for the working set that earns it.
///   kL3 — CPU-only survival: nothing places on any device. The system is
///         slow but alive, and the devices quiesce so breakers can probe
///         into idle heaps.
enum class BrownoutLevel { kL0 = 0, kL1 = 1, kL2 = 2, kL3 = 3 };

const char* BrownoutLevelName(BrownoutLevel level);

/// One observation of the signals the controller samples, aggregated over
/// the whole machine by the caller (EngineContext::NoteQueryFinished — the
/// same cadence that feeds the per-device thrashing detectors). Counters are
/// *cumulative*; the controller windows them into deltas itself.
struct BrownoutSignals {
  /// Worst per-device ThrashingDetector state (0 calm / 1 pressure /
  /// 2 thrashing).
  int worst_thrash_state = 0;
  bool any_breaker_open = false;
  bool all_breakers_open = false;
  bool any_breaker_half_open = false;
  /// Max over devices of heap used/capacity.
  double heap_pressure = 0.0;
  /// Cumulative device-operator attempts / aborts (summed over devices).
  int64_t gpu_attempts = 0;
  int64_t gpu_aborts = 0;
  /// Per-device "this device is currently thrashing" flags, indexed by
  /// device; sized to the machine's device count.
  std::vector<bool> device_thrashing;
};

/// Admission-layer observation, pulled through a caller-installed probe so
/// this library stays below the server layer. Counters cumulative.
struct BrownoutAdmissionProbe {
  int queued = 0;
  int in_flight = 0;
  uint64_t offered = 0;
  uint64_t shed = 0;
};

/// Coordinated graceful-degradation controller (the "brownout" ladder).
///
/// Every defense the engine grew so far is a *local* reflex: the breaker
/// sees one device's aborts, the detector one device's heap, the admission
/// governor one queue. The brownout controller is the component that sees
/// all of them at once and trades throughput for survival deliberately,
/// stepping a small ladder of degradation levels (BrownoutLevel) with
/// streak-based hysteresis — one noisy window cannot flip the system into
/// survival mode, and recovery requires sustained calm.
///
/// Escalation moves one level per decision so each restriction gets a
/// window to take effect before the next is added (L1's fusion/DoP relief
/// often clears the pressure that would otherwise have tripped L2).
///
/// Concurrency: `Update()` (one caller cadence, cheap) takes the internal
/// mutex; every *policy read* — level(), DopCap(), AllowCacheAdmission(),
/// DevicePlacementAllowed(), AllowMultiJoinFusion() — is a relaxed atomic
/// load, so hot paths (admission under its own lock, per-morsel kernels,
/// placement) never contend on this object and no lock ordering exists
/// between the controller and its consumers.
class BrownoutController {
 public:
  struct Options {
    /// Heap pressure contributing to L1 / forcing at least L2.
    double heap_l1 = 0.90;
    double heap_l2 = 0.98;
    /// Windowed device abort ratio contributing to L1 / L2.
    double abort_ratio_l1 = 0.25;
    double abort_ratio_l2 = 0.50;
    /// Minimum device attempts in a window before the abort ratio counts
    /// (a single cold abort must not read as a 100% storm).
    int64_t min_window_attempts = 8;
    /// Admission queue depth / windowed shed fraction contributing to L1.
    int queue_depth_l1 = 32;
    double shed_rate_l1 = 0.10;
    /// Consecutive qualifying updates before escalating / de-escalating.
    int escalate_updates = 2;
    int calm_updates = 4;
    /// Intra-operator DoP ceiling applied at L1 and above.
    int l1_dop_cap = 2;
    /// Template hits required to count as "hot" for L2 device admission.
    uint64_t hot_template_min_hits = 3;
    /// Bound on the template-hotness map (new templates beyond it are
    /// treated as cold rather than tracked).
    size_t max_templates = 4096;
  };

  BrownoutController(const Options& options, int device_count,
                     MetricRegistry* registry = nullptr,
                     FlightRecorder* recorder = nullptr);

  BrownoutController(const BrownoutController&) = delete;
  BrownoutController& operator=(const BrownoutController&) = delete;

  /// Ingests one signal window and possibly steps the ladder. Calls the
  /// admission probe (if installed) *before* taking the internal mutex.
  BrownoutLevel Update(const BrownoutSignals& signals);

  /// Installs/clears the admission-layer probe. The probe must not call
  /// back into this controller's Update (policy reads are fine).
  void SetAdmissionProbe(std::function<BrownoutAdmissionProbe()> probe);

  // --- Policy reads (lock-free; safe from any hot path) ---------------------
  BrownoutLevel level() const {
    return static_cast<BrownoutLevel>(level_.load(std::memory_order_relaxed));
  }
  int level_int() const { return level_.load(std::memory_order_relaxed); }

  /// DoP ceiling for query execution, 0 = uncapped (L0).
  int DopCap() const;
  /// False at L1+: multi-join fused pipelines keep every build resident.
  bool AllowMultiJoinFusion() const;
  /// False at L2+: cache misses stop demand-inserting.
  bool AllowCacheAdmission() const;
  /// Whether operators may be *placed* on `device` at all (false for every
  /// device at L3; at L2 devices currently flagged thrashing are excluded
  /// unless that would leave no device).
  bool DevicePlacementAllowed(int device) const;

  // --- Template hotness (L2 gate) -------------------------------------------
  /// Notes one submission of the template `fingerprint` (a stable hash of
  /// the plan shape; opaque to this class). Cheap, small-mutex.
  void NoteQuery(uint64_t fingerprint);
  /// Whether a query of this template may use a device under the current
  /// level: always at L0/L1, only hot templates at L2, never at L3.
  bool AllowDeviceForTemplate(uint64_t fingerprint) const;

  /// Counts a query pinned to the CPU by the brownout policy (metric).
  void NoteCpuPin();

  // --- Introspection ---------------------------------------------------------
  uint64_t transitions() const;
  /// Forces a level (tests / operator override); records the transition.
  void ForceLevel(BrownoutLevel level);
  void Reset();

 private:
  /// The level the current window's signals call for, ignoring hysteresis.
  int TargetLevelLocked(const BrownoutSignals& signals, double abort_ratio,
                        const BrownoutAdmissionProbe& admission,
                        double shed_rate) const;
  void TransitionLocked(int next);
  void PublishDeviceMaskLocked(const BrownoutSignals* signals);

  const Options options_;
  const int device_count_;
  MetricRegistry* const registry_;
  FlightRecorder* const recorder_;

  std::atomic<int> level_{0};
  /// Bit d set = placement on device d allowed. Recomputed every Update.
  std::atomic<uint64_t> device_mask_{~0ull};

  mutable std::mutex mutex_;  // guards everything below
  std::function<BrownoutAdmissionProbe()> probe_;
  int escalate_streak_ = 0;
  int calm_streak_ = 0;
  uint64_t transitions_ = 0;
  // Previous cumulative counters for windowing.
  int64_t prev_gpu_attempts_ = 0;
  int64_t prev_gpu_aborts_ = 0;
  uint64_t prev_offered_ = 0;
  uint64_t prev_shed_ = 0;
  bool has_previous_ = false;
  std::vector<bool> last_thrashing_;

  mutable std::mutex template_mutex_;
  std::unordered_map<uint64_t, uint64_t> template_hits_;
};

}  // namespace hetdb

#endif  // HETDB_FAULT_BROWNOUT_H_
