# Empty dependencies file for fig12_chopping.
# This may be replaced when dependencies are built.
