#include <gtest/gtest.h>

#include "cache/data_cache.h"
#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

TEST(CompressedBytesTest, BitPackingFollowsValueRange) {
  // Values in [0, 10]: 4 bits each.
  Int32Column narrow("n", std::vector<int32_t>(800, 0));
  narrow.mutable_values().back() = 10;
  EXPECT_EQ(narrow.compressed_bytes(), 800u * 4 / 8 + 16);
  // Frame of reference: a large but narrow-range domain packs equally well.
  std::vector<int32_t> offset(800, 1000000);
  offset.back() = 1000010;
  Int32Column shifted("s", std::move(offset));
  EXPECT_EQ(shifted.compressed_bytes(), 800u * 4 / 8 + 16);
  // Full-range data barely compresses.
  std::vector<int32_t> wide(800);
  for (int i = 0; i < 800; ++i) wide[i] = i * 2654435761u;
  Int32Column random("r", std::move(wide));
  EXPECT_GT(random.compressed_bytes(), 800u * 28 / 8);
}

TEST(CompressedBytesTest, ConstantColumnPacksToOneBit) {
  Int32Column constant("c", std::vector<int32_t>(800, 7));
  EXPECT_EQ(constant.compressed_bytes(), 800u / 8 + 16);
}

TEST(CompressedBytesTest, AppendsInvalidateTheCache) {
  Int32Column column("c", std::vector<int32_t>(800, 0));
  const size_t before = column.compressed_bytes();
  column.Append(1 << 20);  // widens the range
  EXPECT_GT(column.compressed_bytes(), before);
}

TEST(CompressedBytesTest, StringColumnsPackDictionaryCodes) {
  auto column = StringColumn::FromDictionary("s", {"a", "b", "c"});
  for (int i = 0; i < 800; ++i) column->AppendCode(i % 3);
  // 3 dictionary entries: 2 bits per code.
  EXPECT_EQ(column->compressed_bytes(), 800u * 2 / 8 + 16 + 3);
  EXPECT_LT(column->compressed_bytes(), column->data_bytes());
}

TEST(CompressedBytesTest, DoublesUseByteLevelEstimate) {
  DoubleColumn column("d", std::vector<double>(100, 1.5));
  EXPECT_EQ(column.compressed_bytes(), 100 * 8 / 2 + 16u);
}

TEST(CompressedCacheTest, EntriesChargeCompressedBytes) {
  SystemConfig config;
  config.simulate_time = false;
  Simulator sim(config);
  auto column = std::make_shared<Int32Column>(
      "c", std::vector<int32_t>(1000, 3));  // 1 bit/value
  DataCache plain(1 << 20, EvictionPolicy::kLfu, &sim, /*compress=*/false);
  DataCache packed(1 << 20, EvictionPolicy::kLfu, &sim, /*compress=*/true);
  { auto a = plain.RequireOnDevice(column, "t.c"); }
  { auto a = packed.RequireOnDevice(column, "t.c"); }
  EXPECT_EQ(plain.used_bytes(), 4000u);
  EXPECT_EQ(packed.used_bytes(), column->compressed_bytes());
  EXPECT_LT(packed.used_bytes(), plain.used_bytes() / 10);
}

TEST(CompressedCacheTest, CompressionShrinksTransfers) {
  SystemConfig config;
  config.simulate_time = false;
  config.compress_device_cache = true;
  config.device_cache_bytes = 1 << 20;
  config.device_memory_bytes = 2 << 20;

  SsbGeneratorOptions gen;
  gen.scale_factor = 0.1;
  DatabasePtr db = GenerateSsbDatabase(gen);

  // Same query, compressed vs uncompressed cache: fewer bytes on the bus.
  uint64_t bytes_compressed = 0, bytes_plain = 0;
  for (bool compress : {false, true}) {
    SystemConfig variant = config;
    variant.compress_device_cache = compress;
    EngineContext ctx(variant, db);
    StrategyRunner runner(&ctx, Strategy::kGpuOnly);
    Result<NamedQuery> query = SsbQueryByName("Q1.1");
    ASSERT_TRUE(query.ok());
    Result<PlanNodePtr> plan = query->builder(*db);
    ASSERT_TRUE(plan.ok());
    Result<TablePtr> result = runner.RunQuery(plan.value());
    ASSERT_TRUE(result.ok());
    const uint64_t bytes = ctx.simulator().bus().transferred_bytes(
        TransferDirection::kHostToDevice);
    (compress ? bytes_compressed : bytes_plain) = bytes;
  }
  EXPECT_LT(bytes_compressed, bytes_plain);
}

TEST(CompressedCacheTest, ResultsUnaffectedByCompression) {
  SsbGeneratorOptions gen;
  gen.scale_factor = 0.1;
  DatabasePtr db = GenerateSsbDatabase(gen);
  TablePtr expected;
  for (bool compress : {false, true}) {
    SystemConfig config = TestConfig();
    config.compress_device_cache = compress;
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);
    runner.RefreshDataPlacement();
    Result<NamedQuery> query = SsbQueryByName("Q2.1");
    ASSERT_TRUE(query.ok());
    Result<PlanNodePtr> plan = query->builder(*db);
    ASSERT_TRUE(plan.ok());
    Result<TablePtr> result = runner.RunQuery(plan.value());
    ASSERT_TRUE(result.ok());
    if (expected == nullptr) {
      expected = result.value();
    } else {
      EXPECT_TRUE(TablesEqual(*expected, *result.value()));
    }
  }
}

}  // namespace
}  // namespace hetdb
