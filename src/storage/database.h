#ifndef HETDB_STORAGE_DATABASE_H_
#define HETDB_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hetdb {

/// In-memory catalog of base tables.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status AddTable(TablePtr table);
  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Resolves "<table>.<column>" to the column, or NotFound.
  Result<ColumnPtr> GetColumnByQualifiedName(const std::string& qualified) const;

  std::vector<TablePtr> tables() const;

  /// Total bytes of all base table data (paper Figure 16 input).
  size_t TotalBytes() const;

  /// Clears all access counters (used between workload phases).
  void ResetAccessCounters();

 private:
  std::unordered_map<std::string, TablePtr> tables_;
};

using DatabasePtr = std::shared_ptr<Database>;

}  // namespace hetdb

#endif  // HETDB_STORAGE_DATABASE_H_
