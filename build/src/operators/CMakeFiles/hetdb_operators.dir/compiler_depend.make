# Empty compiler generated dependencies file for hetdb_operators.
# This may be replaced when dependencies are built.
