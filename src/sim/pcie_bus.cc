#include "sim/pcie_bus.h"

namespace hetdb {

void PcieBus::Transfer(size_t bytes, TransferDirection direction,
                       bool asynchronous) {
  if (bytes == 0) return;
  const double effective_mbps =
      asynchronous ? bandwidth_mbps_ : bandwidth_mbps_ * sync_efficiency_;
  // bytes / (MB/s) == microseconds, since 1 MB/s == 1 byte/us.
  const double micros = static_cast<double>(bytes) / effective_mbps;
  const int lane = Index(direction);
  {
    std::lock_guard<std::mutex> lock(lane_mutex_[lane]);
    clock_->Charge(micros);
  }
  bytes_[lane].fetch_add(bytes, std::memory_order_relaxed);
  micros_[lane].fetch_add(static_cast<int64_t>(micros),
                          std::memory_order_relaxed);
  count_[lane].fetch_add(1, std::memory_order_relaxed);
}

void PcieBus::ResetStats() {
  for (int lane = 0; lane < 2; ++lane) {
    bytes_[lane].store(0, std::memory_order_relaxed);
    micros_[lane].store(0, std::memory_order_relaxed);
    count_[lane].store(0, std::memory_order_relaxed);
  }
}

}  // namespace hetdb
