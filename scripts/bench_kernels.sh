#!/usr/bin/env bash
# Records the kernel-backend microbenchmarks (scalar vs morsel-parallel) into
# BENCH_kernels.json at the repo root and prints a speedup summary.
#
# Usage:
#     scripts/bench_kernels.sh [build_dir]
#
# Re-record the checked-in baseline after touching src/operators/kernels.cc
# or src/common/parallel.*:
#     cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#     scripts/bench_kernels.sh build
#
# Numbers are host-dependent; the checked-in BENCH_kernels.json documents the
# recording machine in its "context" block. On single-core containers the
# wall-time speedup of Parallel/8 is bounded by total work (the arena has one
# core to run on); the per-run "CPU" column counts only the calling thread,
# so CPU-time ratios show the work the arena offloads.
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench="${repo_root}/${build_dir}/bench/micro_kernels"
out="${repo_root}/BENCH_kernels.json"

if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not built (run cmake --build ${build_dir} -j first)" >&2
  exit 1
fi

"${bench}" \
  --benchmark_filter='BM_((Filter|HashJoin|Aggregate)(Scalar|Parallel)|Pipeline(Unfused|Fused))' \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="${out}" \
  --benchmark_out_format=json

python3 - "${out}" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as f:
    doc = json.load(f)

median = {
    b["run_name"]: b["real_time"]
    for b in doc["benchmarks"]
    if b.get("aggregate_name") == "median"
}

print()
print(f"{'kernel':<12} {'scalar':>12} {'parallel/8':>12} {'speedup':>9}")
for kernel in ("Filter", "HashJoin", "Aggregate"):
    scalar = median.get(f"BM_{kernel}Scalar")
    par8 = median.get(f"BM_{kernel}Parallel/8")
    if scalar is None or par8 is None:
        print(f"{kernel:<12} {'missing':>12}")
        continue
    print(f"{kernel:<12} {scalar:>10.0f}ns {par8:>10.0f}ns "
          f"{scalar / par8:>8.2f}x")

# Operator fusion: same chain unfused vs fused, at DoP 1 and 8.
print()
print(f"{'pipeline':<12} {'unfused':>12} {'fused':>12} {'speedup':>9}")
for dop in (1, 8):
    unfused = median.get(f"BM_PipelineUnfused/{dop}")
    fused = median.get(f"BM_PipelineFused/{dop}")
    if unfused is None or fused is None:
        print(f"{'dop ' + str(dop):<12} {'missing':>12}")
        continue
    print(f"{'dop ' + str(dop):<12} {unfused:>10.0f}ns {fused:>10.0f}ns "
          f"{unfused / fused:>8.2f}x")
EOF

echo
echo "wrote ${out}"
