# Empty compiler generated dependencies file for ssb_test.
# This may be replaced when dependencies are built.
