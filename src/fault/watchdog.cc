#include "fault/watchdog.h"

#include <string>
#include <utility>
#include <vector>

namespace hetdb {

namespace {
constexpr size_t kKilledHistory = 4096;
}  // namespace

StuckQueryWatchdog::StuckQueryWatchdog(const Options& options,
                                       MetricRegistry* registry,
                                       FlightRecorder* recorder)
    : options_(options), registry_(registry), recorder_(recorder) {}

StuckQueryWatchdog::~StuckQueryWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StuckQueryWatchdog::EnsureThreadLocked() {
  if (thread_started_ || options_.scan_period_micros == 0) return;
  thread_started_ = true;
  thread_ = std::thread([this] { ScanLoop(); });
}

void StuckQueryWatchdog::Register(
    uint64_t query_id, QueryStatsPtr stats, CancelToken cancel,
    std::chrono::steady_clock::time_point deadline, bool has_deadline) {
  if (!options_.enabled || stats == nullptr || !cancel.cancellable()) return;
  const auto now = std::chrono::steady_clock::now();
  Watch watch;
  watch.stats = std::move(stats);
  watch.cancel = std::move(cancel);
  watch.registered_at = now;
  watch.deadline = deadline;
  watch.has_deadline = has_deadline;
  watch.last_progress = now;
  std::lock_guard<std::mutex> lock(mutex_);
  EnsureThreadLocked();
  watches_[query_id] = std::move(watch);
  if (registry_ != nullptr) {
    registry_->GetGauge("watchdog.active")
        .Set(static_cast<int64_t>(watches_.size()));
  }
}

void StuckQueryWatchdog::Deregister(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  watches_.erase(query_id);
  if (registry_ != nullptr) {
    registry_->GetGauge("watchdog.active")
        .Set(static_cast<int64_t>(watches_.size()));
  }
}

void StuckQueryWatchdog::ScanLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::microseconds(options_.scan_period_micros),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    Scan(std::chrono::steady_clock::now());
    lock.lock();
  }
}

void StuckQueryWatchdog::CheckNow() {
  Scan(std::chrono::steady_clock::now());
}

void StuckQueryWatchdog::Scan(std::chrono::steady_clock::time_point now) {
  struct Victim {
    uint64_t query_id;
    CancelToken cancel;
    std::string reason;
  };
  std::vector<Victim> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [query_id, watch] : watches_) {
      if (killed_.count(query_id) != 0) continue;  // already fired
      const int64_t ops = watch.stats->operators_run();
      const int64_t run = watch.stats->run_micros();
      const int64_t transfers = watch.stats->transfers();
      if (ops != watch.last_ops || run != watch.last_run_micros ||
          transfers != watch.last_transfers) {
        watch.last_ops = ops;
        watch.last_run_micros = run;
        watch.last_transfers = transfers;
        watch.last_progress = now;
        // A query making progress can still be a deadline-multiple or
        // runtime-ceiling victim below — fall through.
      }
      std::string reason;
      const auto since_progress =
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - watch.last_progress)
              .count();
      const auto runtime =
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - watch.registered_at)
              .count();
      if (options_.stall_micros > 0 &&
          since_progress >= static_cast<int64_t>(options_.stall_micros)) {
        reason = "stall";
      } else if (watch.has_deadline && options_.deadline_multiple > 0) {
        const auto budget =
            std::chrono::duration_cast<std::chrono::microseconds>(
                watch.deadline - watch.registered_at)
                .count();
        if (budget > 0 &&
            static_cast<double>(runtime) >=
                options_.deadline_multiple * static_cast<double>(budget)) {
          reason = "deadline_multiple";
        }
      }
      if (reason.empty() && options_.max_runtime_micros > 0 &&
          runtime >= static_cast<int64_t>(options_.max_runtime_micros)) {
        reason = "max_runtime";
      }
      if (reason.empty()) continue;
      killed_.insert(query_id);
      killed_order_.push_back(query_id);
      while (killed_order_.size() > kKilledHistory) {
        killed_.erase(killed_order_.front());
        killed_order_.pop_front();
      }
      victims.push_back({query_id, watch.cancel, std::move(reason)});
    }
  }
  for (Victim& victim : victims) {
    fires_.fetch_add(1, std::memory_order_relaxed);
    if (registry_ != nullptr) {
      registry_->GetCounter("watchdog.fires").Increment();
      registry_->GetCounter("watchdog.fires." + victim.reason).Increment();
    }
    if (recorder_ != nullptr) {
      recorder_->RecordStateTransition(
          "watchdog", "watching",
          "fired:" + victim.reason + ":q" + std::to_string(victim.query_id));
      // Satellite: a watchdog fire is a post-mortem moment like a breaker
      // trip — freeze the ring while the stuck query's history is in it.
      recorder_->AutoDump("watchdog_fire");
    }
    victim.cancel.RequestCancel();
  }
}

bool StuckQueryWatchdog::WasKilled(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return killed_.count(query_id) != 0;
}

size_t StuckQueryWatchdog::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watches_.size();
}

}  // namespace hetdb
