file(REMOVE_RECURSE
  "CMakeFiles/hetdb_common.dir/logging.cc.o"
  "CMakeFiles/hetdb_common.dir/logging.cc.o.d"
  "CMakeFiles/hetdb_common.dir/status.cc.o"
  "CMakeFiles/hetdb_common.dir/status.cc.o.d"
  "libhetdb_common.a"
  "libhetdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
