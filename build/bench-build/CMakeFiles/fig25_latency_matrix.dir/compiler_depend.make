# Empty compiler generated dependencies file for fig25_latency_matrix.
# This may be replaced when dependencies are built.
