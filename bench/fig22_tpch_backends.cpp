// Figure 22 (Appendix A): per-query TPC-H execution time of the CPU backend
// vs the device backend, single user, SF 10, hot cache. The paper uses this
// to establish that both backends are competitive with MonetDB/Ocelot; since
// a from-scratch Ocelot build is out of scope, this reproduces the figure's
// message — the hot device backend accelerates every query (see DESIGN.md
// substitution table).

#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;

  Banner("Figure 22",
         "TPC-H per-query times, CPU backend vs hot device backend (SF " +
             std::to_string(static_cast<int>(sf)) + ", single user)");

  TpchGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateTpchDatabase(gen);

  WorkloadRunOptions options;
  options.repetitions = args.quick ? 1 : 3;
  options.warmup_repetitions = 1;

  const WorkloadRunResult cpu = RunPoint(PaperConfig(args.time_scale), db,
                                         Strategy::kCpuOnly, TpchQueries(),
                                         options);
  const WorkloadRunResult gpu = RunPoint(PaperConfig(args.time_scale), db,
                                         Strategy::kGpuOnly, TpchQueries(),
                                         options);

  PrintHeader({"query", "cpu_backend[ms]", "gpu_backend[ms]", "speedup"});
  for (const auto& [name, cpu_ms] : cpu.latency_ms_by_query) {
    auto it = gpu.latency_ms_by_query.find(name);
    const double gpu_ms = it != gpu.latency_ms_by_query.end() ? it->second : -1;
    PrintCell(name);
    PrintCell(cpu_ms);
    PrintCell(gpu_ms);
    PrintCell(gpu_ms > 0 ? cpu_ms / gpu_ms : 0.0);
    EndRow();
  }
  return 0;
}
