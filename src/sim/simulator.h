#ifndef HETDB_SIM_SIMULATOR_H_
#define HETDB_SIM_SIMULATOR_H_

#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/config.h"
#include "fault/fault_injector.h"
#include "sim/device_allocator.h"
#include "sim/pcie_bus.h"
#include "sim/sim_clock.h"

namespace hetdb {

/// The two processor classes of the paper's heterogeneous machine.
enum class ProcessorKind { kCpu = 0, kGpu = 1 };

const char* ProcessorKindToString(ProcessorKind kind);

/// Operator cost classes, mapping to ThroughputTable entries.
enum class OpClass { kScan, kJoin, kAggregate, kSort, kProject, kMaterialize };

/// Simple counting semaphore (std::counting_semaphore needs a compile-time
/// ceiling; the CPU slot count is a runtime config value).
class Semaphore {
 public:
  explicit Semaphore(int count) : count_(count) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    --count_;
  }
  void Release() { Release(1); }

  /// Blocks until at least one permit is free, then takes up to `max_count`
  /// of the free permits and returns how many were taken. Used to model
  /// adaptive intra-operator parallelism: an idle machine gives a kernel all
  /// cores, a loaded machine one (Section 5.2 / Psaroudakis et al.).
  int AcquireUpTo(int max_count) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    const int taken = std::min(count_, max_count);
    count_ -= taken;
    return taken;
  }

  void Release(int permits) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      count_ += permits;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

/// Bundles the simulated machine: host CPU slots, the co-processor (heap
/// allocator + kernel serialization), and the PCIe bus.
///
/// One Simulator instance represents one machine; every engine, cache, and
/// workload run is constructed over a Simulator. Timing semantics:
///
///  * `ChargeCompute(kCpu, ...)` occupies one of `cpu_workers` CPU slots for
///    the modeled kernel duration — the host has finitely many cores.
///  * `ChargeCompute(kGpu, ...)` serializes on the device kernel lock —
///    device kernels time-share the co-processor, while the *memory* of
///    concurrently running device operators stays allocated for their whole
///    lifetime. This combination is exactly what makes heap contention
///    (many operators holding heap while waiting) possible, as in the paper.
class Simulator {
 public:
  explicit Simulator(const SystemConfig& config);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const SystemConfig& config() const { return config_; }
  SimClock& clock() { return clock_; }
  DeviceAllocator& device_heap() { return *device_heap_; }
  PcieBus& bus() { return *bus_; }
  /// The machine's fault injector; consulted by the heap allocator, the
  /// bus, and device kernel launches. Disarmed by default.
  FaultInjector& fault_injector() { return *fault_injector_; }

  /// Models executing one operator kernel of class `op_class` over
  /// `input_bytes` of data on `processor`. Blocks for the modeled duration
  /// (plus any queuing for a CPU slot / the device kernel lock).
  void ChargeCompute(ProcessorKind processor, OpClass op_class,
                     size_t input_bytes);

  /// Modeled kernel duration without executing it (for cost estimation).
  double EstimateComputeMicros(ProcessorKind processor, OpClass op_class,
                               size_t input_bytes) const;

  /// Modeled one-way transfer duration for `bytes` (for cost estimation).
  double EstimateTransferMicros(size_t bytes) const;

 private:
  double ThroughputMbps(ProcessorKind processor, OpClass op_class) const;

  SystemConfig config_;
  SimClock clock_;
  std::unique_ptr<FaultInjector> fault_injector_;  // before heap/bus users
  std::unique_ptr<DeviceAllocator> device_heap_;
  std::unique_ptr<PcieBus> bus_;
  Semaphore cpu_slots_;
  std::mutex gpu_kernel_mutex_;
};

using SimulatorPtr = std::shared_ptr<Simulator>;

}  // namespace hetdb

#endif  // HETDB_SIM_SIMULATOR_H_
