file(REMOVE_RECURSE
  "CMakeFiles/custom_table.dir/custom_table.cpp.o"
  "CMakeFiles/custom_table.dir/custom_table.cpp.o.d"
  "custom_table"
  "custom_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
