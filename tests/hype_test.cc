#include <gtest/gtest.h>

#include "hype/cost_model.h"
#include "hype/load_tracker.h"
#include "hype/scheduler.h"

namespace hetdb {
namespace {

SystemConfig FastConfig() {
  SystemConfig config;
  config.simulate_time = false;
  return config;
}

TEST(CostModelTest, BootstrapsFromAnalyticalModel) {
  Simulator sim(FastConfig());
  CostModel model(&sim);
  // Without observations the estimate equals the simulator's.
  EXPECT_DOUBLE_EQ(
      model.EstimateMicros(ProcessorKind::kCpu, OpClass::kScan, 4000),
      sim.EstimateComputeMicros(ProcessorKind::kCpu, OpClass::kScan, 4000));
}

TEST(CostModelTest, LearnsLinearCost) {
  Simulator sim(FastConfig());
  CostModel model(&sim);
  // Feed a synthetic machine: cost = 7 + 0.003 * bytes.
  for (int i = 1; i <= 20; ++i) {
    const size_t bytes = static_cast<size_t>(i) * 1000;
    model.Observe(ProcessorKind::kCpu, OpClass::kJoin, bytes,
                  7.0 + 0.003 * bytes);
  }
  EXPECT_EQ(model.ObservationCount(ProcessorKind::kCpu, OpClass::kJoin), 20u);
  const double estimate =
      model.EstimateMicros(ProcessorKind::kCpu, OpClass::kJoin, 50000);
  EXPECT_NEAR(estimate, 7.0 + 0.003 * 50000, 1.0);
}

TEST(CostModelTest, PairsAreIndependent) {
  Simulator sim(FastConfig());
  CostModel model(&sim);
  for (int i = 0; i < 10; ++i) {
    model.Observe(ProcessorKind::kGpu, OpClass::kScan, 1000, 42);
  }
  // CPU scan estimate is untouched by GPU observations.
  EXPECT_DOUBLE_EQ(
      model.EstimateMicros(ProcessorKind::kCpu, OpClass::kScan, 1000),
      sim.EstimateComputeMicros(ProcessorKind::kCpu, OpClass::kScan, 1000));
  // Degenerate observations (all same x) fall back to the mean.
  EXPECT_NEAR(model.EstimateMicros(ProcessorKind::kGpu, OpClass::kScan, 1000),
              42, 1e-6);
}

TEST(CostModelTest, EstimatesNeverNegative) {
  Simulator sim(FastConfig());
  CostModel model(&sim);
  // A decreasing-cost fit could extrapolate below zero for large inputs.
  model.Observe(ProcessorKind::kCpu, OpClass::kSort, 1000, 100);
  model.Observe(ProcessorKind::kCpu, OpClass::kSort, 2000, 50);
  model.Observe(ProcessorKind::kCpu, OpClass::kSort, 3000, 20);
  model.Observe(ProcessorKind::kCpu, OpClass::kSort, 4000, 10);
  model.Observe(ProcessorKind::kCpu, OpClass::kSort, 5000, 5);
  EXPECT_GE(model.EstimateMicros(ProcessorKind::kCpu, OpClass::kSort, 1 << 20),
            0.0);
}

TEST(LoadTrackerTest, TracksPendingWork) {
  LoadTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.PendingMicros(ProcessorKind::kGpu), 0.0);
  tracker.AddPending(ProcessorKind::kGpu, 100);
  tracker.AddPending(ProcessorKind::kGpu, 50);
  tracker.AddPending(ProcessorKind::kCpu, 10);
  EXPECT_DOUBLE_EQ(tracker.PendingMicros(ProcessorKind::kGpu), 150.0);
  EXPECT_DOUBLE_EQ(tracker.PendingMicros(ProcessorKind::kCpu), 10.0);
  tracker.RemovePending(ProcessorKind::kGpu, 100);
  EXPECT_DOUBLE_EQ(tracker.PendingMicros(ProcessorKind::kGpu), 50.0);
  tracker.Reset();
  EXPECT_DOUBLE_EQ(tracker.PendingMicros(ProcessorKind::kGpu), 0.0);
}

TEST(SchedulerTest, PrefersDeviceWhenDataResident) {
  Simulator sim(FastConfig());
  CostModel model(&sim);
  LoadTracker tracker;
  HypeScheduler scheduler(&model, &tracker, &sim);
  // No transfer needed, no load: the (faster) device wins.
  EXPECT_EQ(scheduler.ChooseProcessor(OpClass::kJoin, 1 << 20, 0),
            ProcessorKind::kGpu);
}

TEST(SchedulerTest, TransferCostTipsTheBalance) {
  Simulator sim(FastConfig());
  CostModel model(&sim);
  LoadTracker tracker;
  HypeScheduler scheduler(&model, &tracker, &sim);
  // All input must cross the bus: with default calibration (PCIe slower
  // than CPU scan), the CPU wins for scans.
  EXPECT_EQ(scheduler.ChooseProcessor(OpClass::kScan, 1 << 20, 1 << 20),
            ProcessorKind::kCpu);
}

TEST(SchedulerTest, LoadBalancesAwayFromBusyDevice) {
  Simulator sim(FastConfig());
  CostModel model(&sim);
  LoadTracker tracker;
  HypeScheduler scheduler(&model, &tracker, &sim);
  // Pile a large queue on the device; CPU becomes the better choice.
  tracker.AddPending(ProcessorKind::kGpu, 1e9);
  EXPECT_EQ(scheduler.ChooseProcessor(OpClass::kJoin, 1 << 20, 0),
            ProcessorKind::kCpu);
}

}  // namespace
}  // namespace hetdb
