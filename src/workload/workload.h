#ifndef HETDB_WORKLOAD_WORKLOAD_H_
#define HETDB_WORKLOAD_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "placement/strategy_runner.h"
#include "ssb/ssb_queries.h"

namespace hetdb {

/// How a workload run is driven (Section 6.1 protocol).
struct WorkloadRunOptions {
  /// Parallel user sessions. The *total* amount of work is fixed by
  /// `repetitions`; users only change how much of it runs concurrently —
  /// exactly the paper's parallel-user experiments.
  int num_users = 1;
  /// How many times the query list is executed in total.
  int repetitions = 1;
  /// Warm-up executions of the query list before measuring (the paper runs
  /// the workload twice to warm up).
  int warmup_repetitions = 1;
  /// Run the Algorithm-1 data placement job after warm-up (loads the device
  /// cache according to observed access frequencies).
  bool refresh_data_placement = true;
  /// >0: admission control — at most this many queries run concurrently
  /// (the Wang-et-al. style baseline in Figure 21).
  int admission_limit = 0;
  /// Mean think time between a session's queries, milliseconds
  /// (exponentially distributed per user). 0 = the paper's closed-loop
  /// full-speed protocol.
  double think_time_ms = 0;
  /// Seed for the per-user think-time/jitter streams (see RunUserLoops).
  uint64_t seed = 42;
};

/// Latency distribution of one query name over a run, milliseconds.
/// Percentiles come from a log-bucketed telemetry histogram (≤ ~6%
/// quantization error); count and mean are exact.
struct QueryLatencyStats {
  uint64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  /// Per-query resource breakdown (from the attribution layer): where the
  /// latency went — waiting in executor queues vs. actually running — and
  /// how often the fault path was taken.
  double queue_wait_ms = 0;     ///< mean ready-queue wait per execution
  double execute_ms = 0;        ///< mean operator run time per execution
  uint64_t device_retries = 0;  ///< total GPU retry attempts
  uint64_t cpu_fallbacks = 0;   ///< total GPU abort -> CPU reroutes
};

/// Aggregated measurements of one workload run.
struct WorkloadRunResult {
  double wall_millis = 0;           ///< workload span (response time)
  double h2d_transfer_millis = 0;   ///< Figures 6, 15, 19
  double d2h_transfer_millis = 0;
  uint64_t h2d_bytes = 0;
  uint64_t d2h_bytes = 0;
  uint64_t gpu_aborts = 0;          ///< Figure 13
  double wasted_millis = 0;         ///< Figure 20
  uint64_t cpu_operators = 0;
  uint64_t gpu_operators = 0;
  uint64_t queries_run = 0;
  uint64_t failed_queries = 0;
  /// Mean latency per query name, milliseconds (Figures 17, 22, 23, 25).
  std::map<std::string, double> latency_ms_by_query;
  /// Full latency distribution per query name, including the tail
  /// percentiles of the paper's Figure 21 analysis.
  std::map<std::string, QueryLatencyStats> latency_stats_by_query;

  std::string ToString() const;
  /// One line per query name: queue-wait vs. execute means, retry and CPU
  /// fallback counts (bench binaries print this under --per-query).
  std::string PerQueryToString() const;
};

/// Executes `queries` x repetitions under `runner`'s strategy with
/// `options.num_users` session threads pulling from a shared queue, after
/// warm-up and (optionally) a data placement refresh. Metrics and bus/cache
/// statistics are reset after warm-up so the result covers only the measured
/// phase.
WorkloadRunResult RunWorkload(StrategyRunner& runner,
                              const std::vector<NamedQuery>& queries,
                              const WorkloadRunOptions& options);

/// Appendix B.1: the serial selection micro-workload — eight interleaved
/// single-column selections over the SSB lineorder measure columns. One
/// "repetition" is one pass over the eight queries.
std::vector<NamedQuery> SerialSelectionQueries();

/// Appendix B.2: the parallel selection micro-workload — one selection query
/// filtering lo_discount and lo_quantity, executed by many users.
std::vector<NamedQuery> ParallelSelectionQueries();

}  // namespace hetdb

#endif  // HETDB_WORKLOAD_WORKLOAD_H_
