file(REMOVE_RECURSE
  "libhetdb_ssb.a"
)
