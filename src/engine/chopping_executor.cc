#include "engine/chopping_executor.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

namespace {

/// Stable fingerprint of the plan *template*: the operator shapes plus the
/// base columns the scans read. Two executions of the same SSB query hash
/// identically; two different templates almost surely do not. This is the
/// brownout controller's hot-template key (L2 pins cold templates to the
/// CPU), so it deliberately ignores runtime state like cardinalities.
uint64_t PlanTemplateFingerprint(const PlanNode& root) {
  uint64_t fingerprint = 1469598103934665603ull;  // FNV offset basis
  const std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    fingerprint = (fingerprint ^ static_cast<uint64_t>(node.op())) *
                  1099511628211ull;
    if (node.op() == PlanOp::kScan) {
      const auto& scan = static_cast<const ScanNode&>(node);
      for (const auto& [key, column] : scan.base_columns()) {
        fingerprint = (fingerprint ^ std::hash<std::string>{}(key)) *
                      1099511628211ull;
      }
    }
    for (const PlanNodePtr& child : node.children()) walk(*child);
  };
  walk(root);
  return fingerprint;
}

}  // namespace

ChoppingExecutor::ChoppingExecutor(EngineContext* ctx, int cpu_workers,
                                   int gpu_workers)
    : ctx_(ctx), cpu_workers_(cpu_workers), gpu_workers_(gpu_workers) {
  HETDB_CHECK(cpu_workers_ > 0 && gpu_workers_ > 0);
  const int devices = ctx_->device_count();
  ready_queues_.resize(1 + static_cast<size_t>(devices));
  workers_.reserve(cpu_workers_ + gpu_workers_ * devices);
  for (int i = 0; i < cpu_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(0); });
  }
  // Each device gets its own pool: the pool size per device stays the heap
  // contention knob, and N devices run N pools' worth of operators at once.
  for (int d = 0; d < devices; ++d) {
    for (int i = 0; i < gpu_workers_; ++i) {
      workers_.emplace_back(
          [this, d] { WorkerLoop(QueueIndex(ProcessorKind::kGpu, d)); });
    }
  }
}

ChoppingExecutor::~ChoppingExecutor() {
  // Drain the ready queues under the same lock that flips shutting_down_, so
  // no worker can pick up a drained task and no ScheduleTask can enqueue
  // after the drain (it drops + fails instead). This closes the shutdown
  // race where a worker exits while a sibling is about to schedule the
  // parent — previously a stranded promise (broken_promise at .get()).
  std::vector<std::pair<QueryExecPtr, OpTask*>> dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (auto& queue : ready_queues_) {
      for (auto& entry : queue) dropped.push_back(std::move(entry));
      queue.clear();
    }
  }
  ready_cv_.notify_all();
  const Status shutdown = Status::Cancelled("chopping executor shut down");
  for (auto& [query, task] : dropped) {
    ctx_->load_tracker().RemovePending(task->assigned,
                                       task->load_estimate_micros);
    FailQuery(query, shutdown);
    ReleaseTaskInputs(task);
  }
  for (std::thread& worker : workers_) worker.join();
  // Workers are gone; settle any promise an in-flight path did not reach.
  for (const auto& weak : live_queries_) {
    if (QueryExecPtr query = weak.lock()) FailQuery(query, shutdown);
  }
}

std::future<Result<TablePtr>> ChoppingExecutor::Submit(PlanNodePtr root,
                                                       RuntimePlacer placer,
                                                       QueryControls controls) {
  auto query = std::make_shared<QueryExec>();
  query->root = std::move(root);
  query->placer = std::move(placer);
  query->controls = std::move(controls);
  query->query_id = Telemetry::NextQueryId();
  query->stats = query->controls.stats != nullptr ? query->controls.stats
                                                  : std::make_shared<QueryStats>();
  if (query->stats->nodes().empty()) {
    RegisterPlanNodes(query->stats.get(), query->root);
  }
  query->stats->set_query_id(query->query_id);
  query->stats->MarkSubmitted();
  query->home_device = ctx_->sharding().QueryHomeDevice(*query->root);
  // Brownout hot-template bookkeeping: every submission votes for its
  // template; at L2 only templates with an established hit count keep their
  // device privileges, everything cold runs CPU-side for the duration.
  query->template_fp = PlanTemplateFingerprint(*query->root);
  ctx_->brownout().NoteQuery(query->template_fp);
  query->device_allowed =
      ctx_->brownout().AllowDeviceForTemplate(query->template_fp);
  // Stuck-query backstop: progress fingerprint scans + deadline-multiple
  // kill fire through the query's own cancel token, so the normal cancel
  // path does the cleanup.
  ctx_->watchdog().Register(query->query_id, query->stats,
                            query->controls.cancel, query->controls.deadline,
                            query->controls.has_deadline());
  std::future<Result<TablePtr>> future = query->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_queries_.erase(
        std::remove_if(live_queries_.begin(), live_queries_.end(),
                       [](const std::weak_ptr<QueryExec>& weak) {
                         return weak.expired();
                       }),
        live_queries_.end());
    live_queries_.push_back(query);
    if (shutting_down_) {
      FailQuery(query, Status::Cancelled("chopping executor shut down"));
      return future;
    }
  }

  // Build the task graph (one task per operator).
  struct Builder {
    QueryExec* query;
    OpTask* Build(const PlanNodePtr& node, OpTask* parent) {
      query->tasks.push_back(std::make_unique<OpTask>());
      OpTask* task = query->tasks.back().get();
      task->query = query;
      task->node = node.get();
      task->parent = parent;
      task->stats = query->stats->Find(node.get());
      task->pending_children.store(static_cast<int>(node->children().size()),
                                   std::memory_order_relaxed);
      for (const PlanNodePtr& child : node->children()) {
        task->children.push_back(Build(child, task));
      }
      return task;
    }
  };
  Builder builder{query.get()};
  builder.Build(query->root, nullptr);

  // Chop: all leaves enter the global operator stream immediately — they
  // have no dependencies (Figure 10).
  for (const auto& task : query->tasks) {
    if (task->children.empty()) ScheduleTask(query, task.get());
  }
  return future;
}

Result<TablePtr> ChoppingExecutor::ExecuteQuery(PlanNodePtr root,
                                                RuntimePlacer placer,
                                                QueryControls controls) {
  return Submit(std::move(root), std::move(placer), std::move(controls)).get();
}

size_t ChoppingExecutor::ReadyQueueDepth(ProcessorKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (kind == ProcessorKind::kCpu) return ready_queues_[0].size();
  size_t depth = 0;
  for (size_t q = 1; q < ready_queues_.size(); ++q) {
    depth += ready_queues_[q].size();
  }
  return depth;
}

Status ChoppingExecutor::CheckRunnable(const QueryExecPtr& query) {
  if (!query->failed.load(std::memory_order_acquire)) {
    if (query->controls.cancel.cancelled()) {
      FailQuery(query, Status::Cancelled("query cancelled by client"));
    } else if (query->controls.has_deadline() &&
               std::chrono::steady_clock::now() >= query->controls.deadline) {
      FailQuery(query, Status::Cancelled("query deadline exceeded"));
    }
  }
  if (query->failed.load(std::memory_order_acquire)) {
    return Status::Cancelled("query failed or cancelled");
  }
  return Status::OK();
}

void ChoppingExecutor::ReleaseTaskInputs(OpTask* task) {
  for (OpTask* child : task->children) child->result = OperatorResult();
}

void ChoppingExecutor::ScheduleTask(const QueryExecPtr& query, OpTask* task) {
  if (!CheckRunnable(query).ok()) {
    // This task is its children's sole consumer; free their device-held
    // results now instead of when the QueryExec is destroyed.
    ReleaseTaskInputs(task);
    return;
  }

  std::vector<OperatorResult*> inputs;
  inputs.reserve(task->children.size());
  for (OpTask* child : task->children) inputs.push_back(&child->result);

  ProcessorKind kind = query->placer(*task->node, inputs, *ctx_);
  if (kind == ProcessorKind::kGpu &&
      (!query->device_allowed || ctx_->brownout().level_int() >= 3)) {
    // Brownout pinning: a cold template at L2, or survival mode (L3) entered
    // after this query was admitted. Lock-free check; the sharding device
    // gate would also catch L3, but pinning here skips the placement work
    // and counts the episode under its own metric.
    kind = ProcessorKind::kCpu;
    ctx_->brownout().NoteCpuPin();
  }

  size_t input_bytes = 0;
  for (OperatorResult* input : inputs) input_bytes += input->table_bytes();
  if (task->node->op() == PlanOp::kScan) {
    input_bytes = task->node->InputBytes({});
  }

  // Device-aware sharding: the placer decides CPU vs device, the sharding
  // policy decides *which* device — preferring wherever the inputs already
  // live, then affinity/round-robin to spread cold work. No admittable
  // device demotes the operator to the CPU queue.
  int device = 0;
  if (kind == ProcessorKind::kGpu) {
    std::vector<std::string> input_keys;
    if (task->node->op() == PlanOp::kScan) {
      const auto& scan = static_cast<const ScanNode&>(*task->node);
      input_keys.reserve(scan.base_columns().size());
      for (const auto& [key, column] : scan.base_columns()) {
        input_keys.push_back(key);
      }
    }
    std::vector<std::pair<int, size_t>> resident_inputs;
    for (OperatorResult* input : inputs) {
      if (input->location == ProcessorKind::kGpu) {
        resident_inputs.emplace_back(input->device, input->table_bytes());
      }
    }
    const int picked = ctx_->sharding().PickDevice(
        input_keys, resident_inputs, input_bytes, query->home_device);
    if (picked < 0) {
      // No device admits work (breakers open or devices lost): the same
      // short-circuit ExecuteWithFallback would take, decided one layer
      // earlier — count it under the same metric.
      ctx_->metrics()
          .registry()
          .GetCounter("breaker.short_circuits")
          .Increment();
      kind = ProcessorKind::kCpu;
    } else {
      device = picked;
    }
  }
  task->assigned = kind;
  task->device = device;

  // Track queue load for HyPE's completion-time estimates. The estimate
  // includes the kernel only; transfers are second-order for load purposes.
  task->load_estimate_micros =
      ctx_->cost_model().EstimateMicros(kind, task->node->op_class(),
                                        input_bytes);
  ctx_->load_tracker().AddPending(kind, task->load_estimate_micros);

  if (TraceRecorder::enabled()) {
    RecordInstantEvent(
        "place " + task->node->label(), "placement", query->query_id,
        {{"processor", ProcessorKindToString(kind)},
         {"device", std::to_string(device)},
         {"load_estimate_us",
          std::to_string(static_cast<int64_t>(task->load_estimate_micros))}});
  }

  task->ready_at = std::chrono::steady_clock::now();
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      // Workers may already be gone; enqueueing would strand the promise.
      dropped = true;
    } else {
      // LIFO ready queues: an operator whose children just completed runs
      // before leaves of queries that have not started yet. This drains
      // queries depth-first, so the device heap holds the intermediate
      // results of only ~pool-size queries at a time instead of one
      // unconsumed result per admitted query — the memory bound that makes
      // the chopping pool an effective cure for heap contention.
      ready_queues_[static_cast<size_t>(QueueIndex(kind, device))]
          .emplace_front(query, task);
    }
  }
  if (dropped) {
    ctx_->load_tracker().RemovePending(kind, task->load_estimate_micros);
    FailQuery(query, Status::Cancelled("chopping executor shut down"));
    ReleaseTaskInputs(task);
    return;
  }
  ready_cv_.notify_all();
}

void ChoppingExecutor::WorkerLoop(int queue_index) {
  const size_t queue = static_cast<size_t>(queue_index);
  const ProcessorKind kind =
      queue_index == 0 ? ProcessorKind::kCpu : ProcessorKind::kGpu;
  while (true) {
    QueryExecPtr query;
    OpTask* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_cv_.wait(lock, [this, queue] {
        return shutting_down_ || !ready_queues_[queue].empty();
      });
      if (shutting_down_ && ready_queues_[queue].empty()) return;
      query = std::move(ready_queues_[queue].front().first);
      task = ready_queues_[queue].front().second;
      ready_queues_[queue].pop_front();
    }
    RunTask(query, task, kind);
  }
}

void ChoppingExecutor::RunTask(const QueryExecPtr& query, OpTask* task,
                               ProcessorKind kind) {
  ctx_->load_tracker().RemovePending(kind, task->load_estimate_micros);
  if (!CheckRunnable(query).ok()) {
    // Sibling already failed the query, or it was cancelled / timed out
    // between scheduling and pickup: drop the task, releasing the inputs it
    // would have consumed (device allocations, cache pins) promptly.
    ReleaseTaskInputs(task);
    return;
  }

  if (task->ready_at != std::chrono::steady_clock::time_point{}) {
    query->stats->OnQueueWait(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - task->ready_at)
            .count(),
        task->stats);
  }

  std::vector<OperatorResult*> inputs;
  inputs.reserve(task->children.size());
  for (OpTask* child : task->children) inputs.push_back(&child->result);

  // Attribute everything this worker does for the operator — transfers,
  // device allocations, cache loads, the root copy-back below — to the
  // query and its node slot.
  QueryStatsScope stats_scope(query->stats, task->stats);

  TraceSpan span;
  if (TraceRecorder::enabled()) {
    span.Begin(task->node->label(), "operator");
    span.SetQuery(query->query_id);
    span.SetNode(reinterpret_cast<uint64_t>(task->node),
                 task->parent != nullptr
                     ? reinterpret_cast<uint64_t>(task->parent->node)
                     : 0);
    span.AddArg("requested", ProcessorKindToString(kind));
  }
  // Charge this worker's core against the shared DoP budget while the
  // operator runs, so kernel-internal morsel parallelism on top of a busy
  // chopping pool cannot oversubscribe the machine. Best effort: with no
  // token available the operator still runs (kernels just stay serial).
  DopBudget::Token dop_token(&DopBudget::Global());
  // Brownout L1+: clamp kernel-internal morsel parallelism on this worker
  // for the duration of the operator (0 = uncapped, a no-op below L1).
  ScopedDopCap brownout_dop_cap(ctx_->brownout().DopCap());
  Stopwatch run_watch;
  Result<ExecutedOperator> executed =
      ExecuteWithFallback(*task->node, inputs, kind, *ctx_, task->device);
  query->stats->OnRun(static_cast<int64_t>(run_watch.ElapsedMicros()),
                      task->stats);
  if (!executed.ok()) {
    if (span.active()) span.AddArg("error", executed.status().ToString());
    FailQuery(query, executed.status());
    ReleaseTaskInputs(task);
    return;
  }
  if (span.active()) {
    span.AddArg("processor", ProcessorKindToString(executed.value().ran_on));
    if (executed.value().aborted) span.AddArg("cpu_retry", "true");
    span.End();  // the span covers execution only, not parent scheduling
  }
  task->result = std::move(executed).value().result;

  // Free the inputs we just consumed (device allocations, cache pins).
  ReleaseTaskInputs(task);

  if (task->parent == nullptr) {
    // Root finished: deliver the result on the host.
    if (task->result.location == ProcessorKind::kGpu &&
        !task->result.base_data) {
      Status copy_back = TransferWithRetry(
          task->result.table_bytes(), TransferDirection::kDeviceToHost, *ctx_,
          task->result.device);
      if (!copy_back.ok()) {
        task->result = OperatorResult();
        FailQuery(query, copy_back);
        return;
      }
      task->result.ReleaseDeviceResources();
    }
    if (query->done.exchange(true, std::memory_order_acq_rel)) {
      // Lost the race against a concurrent FailQuery (cancel during the
      // copy-back): the promise is settled; just drop the device residency.
      task->result = OperatorResult();
      return;
    }
    ctx_->watchdog().Deregister(query->query_id);
    ctx_->metrics().RecordQueryDone();
    query->stats->MarkFinished(/*ok=*/true);
    ctx_->flight_recorder().RecordQuerySummary(query->query_id,
                                               query->stats->name(),
                                               query->stats->SummaryFields());
    ctx_->NoteQueryFinished();
    query->promise.set_value(task->result.table);
    return;
  }

  // Notify the parent; the last completing child inserts it into the stream
  // (Figure 11).
  if (task->parent->pending_children.fetch_sub(
          1, std::memory_order_acq_rel) == 1) {
    ScheduleTask(query, task->parent);
  }
}

void ChoppingExecutor::FailQuery(const QueryExecPtr& query,
                                 const Status& status) {
  query->failed.store(true, std::memory_order_release);
  if (!query->done.exchange(true, std::memory_order_acq_rel)) {
    ctx_->watchdog().Deregister(query->query_id);
    if (query->stats != nullptr) {
      query->stats->MarkFinished(/*ok=*/false, status.ToString());
      ctx_->flight_recorder().RecordQuerySummary(
          query->query_id, query->stats->name(),
          query->stats->SummaryFields());
      ctx_->NoteQueryFinished();
    }
    query->promise.set_value(status);
  }
}

}  // namespace hetdb
