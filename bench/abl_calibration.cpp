// Ablation: sensitivity of the headline result to the simulator's
// calibration constants (DESIGN.md §2). Sweeps the device/CPU speed ratio
// and the PCIe bandwidth at one Figure-14 point (SSB, SF 10, single user)
// and reports CPU-Only vs GPU-Only vs Data-Driven Chopping. The qualitative
// ordering (DD-Chopping never worse than CPU-Only) must hold across the
// sweep — showing the reproduction does not hinge on one magic constant.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

void RunRow(const std::string& label, const SystemConfig& config,
            const DatabasePtr& db) {
  WorkloadRunOptions options;
  options.repetitions = 1;
  options.warmup_repetitions = 1;
  const WorkloadRunResult cpu =
      RunPoint(config, db, Strategy::kCpuOnly, SsbQueries(), options);
  const WorkloadRunResult gpu =
      RunPoint(config, db, Strategy::kGpuOnly, SsbQueries(), options);
  const WorkloadRunResult ddc = RunPoint(
      config, db, Strategy::kDataDrivenChopping, SsbQueries(), options);
  PrintCell(label);
  PrintCell(cpu.wall_millis);
  PrintCell(gpu.wall_millis);
  PrintCell(ddc.wall_millis);
  PrintCell(ddc.wall_millis <= cpu.wall_millis * 1.1 ? std::string("yes")
                                                     : std::string("NO"));
  EndRow();
}

void ScaleGpu(SystemConfig* config, double factor) {
  ThroughputTable& t = config->gpu_throughput;
  t.scan_mbps *= factor;
  t.join_mbps *= factor;
  t.aggregate_mbps *= factor;
  t.sort_mbps *= factor;
  t.project_mbps *= factor;
  t.materialize_mbps *= factor;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 2 : 10;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Banner("Ablation: calibration sensitivity",
         "SSB SF " + std::to_string(static_cast<int>(sf)) +
             ", single user; 'robust' = DD-Chopping <= 1.1x CPU-Only");

  PrintHeader({"variant", "cpu_only[ms]", "gpu_only[ms]", "dd_chopping[ms]",
               "robust"});

  RunRow("baseline", PaperConfig(args.time_scale), db);

  {
    SystemConfig config = PaperConfig(args.time_scale);
    ScaleGpu(&config, 0.5);  // device only ~1.25x the quad-core CPU
    RunRow("gpu_x0.5", config, db);
  }
  {
    SystemConfig config = PaperConfig(args.time_scale);
    ScaleGpu(&config, 2.0);  // device 5x the CPU
    RunRow("gpu_x2", config, db);
  }
  {
    SystemConfig config = PaperConfig(args.time_scale);
    config.pcie_mbps = 50;  // half the bus bandwidth
    RunRow("pcie_x0.5", config, db);
  }
  {
    SystemConfig config = PaperConfig(args.time_scale);
    config.pcie_mbps = 400;  // NVLink-class interconnect
    RunRow("pcie_x4", config, db);
  }
  {
    SystemConfig config = PaperConfig(args.time_scale);
    config.device_cache_bytes = 6ull << 20;  // starved cache
    RunRow("cache_6MiB", config, db);
  }
  return 0;
}
