#ifndef HETDB_COMMON_STOPWATCH_H_
#define HETDB_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace hetdb {

/// Monotonic wall-clock stopwatch with microsecond resolution.
///
/// All engine metrics (workload execution time, transfer time, wasted time)
/// are measured with this clock. Because the device simulator realizes
/// modeled durations as actual sleeps, wall-clock time *is* modeled time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Microseconds since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hetdb

#endif  // HETDB_COMMON_STOPWATCH_H_
