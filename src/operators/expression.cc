#include "operators/expression.h"

#include <sstream>

namespace hetdb {

std::string ValueToString(const Value& value) {
  std::ostringstream os;
  if (std::holds_alternative<int64_t>(value)) {
    os << std::get<int64_t>(value);
  } else if (std::holds_alternative<double>(value)) {
    os << std::get<double>(value);
  } else {
    os << "'" << std::get<std::string>(value) << "'";
  }
  return os.str();
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

std::string Predicate::ToString() const {
  std::ostringstream os;
  os << column << " " << CompareOpToString(op) << " " << ValueToString(value);
  if (op == CompareOp::kBetween) {
    os << " and " << ValueToString(value2);
  }
  return os.str();
}

std::string Disjunction::ToString() const {
  std::ostringstream os;
  if (atoms.size() > 1) os << "(";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) os << " or ";
    os << atoms[i].ToString();
  }
  if (atoms.size() > 1) os << ")";
  return os.str();
}

std::string ConjunctiveFilter::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) os << " and ";
    os << conjuncts[i].ToString();
  }
  return os.str();
}

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
    case AggregateFn::kAvg:
      return "avg";
  }
  return "?";
}

}  // namespace hetdb
