file(REMOVE_RECURSE
  "CMakeFiles/hetdb_cache.dir/data_cache.cc.o"
  "CMakeFiles/hetdb_cache.dir/data_cache.cc.o.d"
  "libhetdb_cache.a"
  "libhetdb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
