#ifndef HETDB_SERVER_SERVER_H_
#define HETDB_SERVER_SERVER_H_

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "placement/strategy_runner.h"
#include "server/admission.h"

namespace hetdb {

/// Per-submission knobs a client hands the session layer. Everything is
/// optional: a default-constructed SubmitOptions is a plain best-effort
/// query with server-created stats.
struct SubmitOptions {
  /// Live token lets the client abort the query — queued or running.
  CancelToken cancel;
  /// Absolute SLO deadline. Admission sheds the query up front when the
  /// deadline is unmeetable; the executor enforces it mid-flight.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Pass a stats object to read attribution back (EXPLAIN ANALYZE); when
  /// null the server creates one so flight-recorder summaries stay complete.
  QueryStatsPtr stats;
  /// Query name for stats / flight-recorder summaries (e.g. "Q3.2").
  std::string name;
  /// WDRR cost units charged against the tenant's deficit.
  double cost = 1.0;

  SubmitOptions WithDeadlineIn(std::chrono::microseconds budget) const {
    SubmitOptions copy = *this;
    copy.deadline = std::chrono::steady_clock::now() + budget;
    return copy;
  }
};

struct ServerOptions {
  Strategy strategy = Strategy::kDataDrivenChopping;
  AdmissionOptions admission;
  /// Dispatcher threads draining the admission queue. 0 = one per
  /// max_concurrency slot, so the governor limit — not thread supply — is
  /// always the binding constraint.
  int dispatchers = 0;
  /// Steer the concurrency governor by the engine's thrashing detector and
  /// device circuit breaker. Off = fixed limit (tests inject their own
  /// signals through AdmissionOptions instead).
  bool governor_follows_engine = true;
  /// Hedged re-execution: a dispatched query that dies for an engine-side
  /// reason (watchdog kill, device lost/aborted mid-query) is replayed once
  /// on the CPU-only path before its future is settled — the client sees a
  /// late answer instead of an infrastructure error. Client cancels and
  /// shed queries are never hedged.
  bool hedge_cpu_replay = true;
  /// Wall-clock budget for one CPU replay, in milliseconds (0 = unbounded).
  /// The replay ignores the original deadline — by the time a hedge runs
  /// the SLO is already lost; the hedge is about availability, not latency.
  double hedge_budget_ms = 5000.0;
};

class Server;

/// A client's handle onto the server: a tenant binding plus submit calls.
/// Sessions are cheap and thread-compatible (one thread per session; open
/// more sessions for more threads). Obtained from Server::OpenSession.
class Session {
 public:
  /// Queues a planned query for admission. The future resolves with the
  /// result, an error, Cancelled, or ResourceExhausted("shed: ...").
  std::future<Result<TablePtr>> Submit(PlanNodePtr plan,
                                       SubmitOptions options = {});
  /// Parses + plans `sql` against the server's database, then Submit()s.
  /// Parse/plan errors fail the future immediately (never admitted).
  std::future<Result<TablePtr>> SubmitSql(const std::string& sql,
                                          SubmitOptions options = {});

  /// Submit-and-wait conveniences.
  Result<TablePtr> Execute(PlanNodePtr plan, SubmitOptions options = {});
  Result<TablePtr> ExecuteSql(const std::string& sql,
                              SubmitOptions options = {});

  const std::string& tenant() const { return tenant_; }
  Server& server() { return *server_; }

 private:
  friend class Server;
  Session(Server* server, std::string tenant)
      : server_(server), tenant_(std::move(tenant)) {}

  Server* server_;
  std::string tenant_;
};
using SessionPtr = std::shared_ptr<Session>;

/// The concurrent serving front-end: sessions feed a central
/// AdmissionController; a pool of dispatcher threads drains it into one
/// shared StrategyRunner (whose chopping pools remain the per-processor
/// operator bound from the paper). The admission layer adds what the
/// executor alone cannot: per-tenant fairness, a load-adaptive cap on
/// *queries* in flight, and SLO-aware shedding before any device resource
/// is touched.
class Server {
 public:
  explicit Server(EngineContext* ctx, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void RegisterTenant(const TenantSpec& spec);
  SessionPtr OpenSession(const std::string& tenant = "default");

  /// Session-independent submit (the sessions call this).
  std::future<Result<TablePtr>> Submit(const std::string& tenant,
                                       PlanNodePtr plan,
                                       SubmitOptions options);

  /// Sheds everything queued, fails future submits, joins dispatchers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  AdmissionController& admission() { return admission_; }
  StrategyRunner& runner() { return runner_; }
  EngineContext& ctx() { return *ctx_; }
  const ServerOptions& options() const { return options_; }

  /// Hedged CPU replays attempted / that produced a result (diagnostics and
  /// the availability bench's accounting).
  uint64_t hedge_attempts() const {
    return hedge_attempts_.load(std::memory_order_relaxed);
  }
  uint64_t hedge_successes() const {
    return hedge_successes_.load(std::memory_order_relaxed);
  }

 private:
  void DispatcherLoop();
  /// One bounded CPU-only replay of `plan`; updates hedge counters and the
  /// flight recorder. `reason` labels the records.
  Result<TablePtr> HedgeReplay(const PlanNodePtr& plan,
                               const std::string& name, uint64_t query_id,
                               const std::string& reason);

  EngineContext* ctx_;
  ServerOptions options_;
  StrategyRunner runner_;
  /// CPU-only replay vehicle for hedged re-execution: no chopping pools, no
  /// device resources — it cannot be hurt by whatever killed the original.
  StrategyRunner hedge_runner_;
  AdmissionController admission_;
  std::atomic<uint64_t> hedge_attempts_{0};
  std::atomic<uint64_t> hedge_successes_{0};
  std::vector<std::thread> dispatchers_;
};

}  // namespace hetdb

#endif  // HETDB_SERVER_SERVER_H_
